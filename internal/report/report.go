// Package report renders the analysis products as plain-text tables
// matching the rows the paper reports, plus simple ASCII series for
// the figures. Everything writes to an io.Writer so the cmd tools and
// benchmarks can print or capture output.
package report

import (
	"fmt"
	"io"
	"strings"
	"time"

	"v6web/internal/alexa"
	"v6web/internal/analysis"
	"v6web/internal/topo"
)

// pct formats a fraction as a percentage.
func pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

// table writes an aligned text table.
func table(w io.Writer, title string, header []string, rows [][]string) {
	fmt.Fprintf(w, "%s\n", title)
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
	fmt.Fprintln(w)
}

// Fig1 renders the IPv6 reachability time series.
func Fig1(w io.Writer, dates []time.Time, series []float64) {
	rows := make([][]string, 0, len(series))
	for i := range series {
		bar := strings.Repeat("#", int(series[i]*4000))
		rows = append(rows, []string{dates[i].Format("2006-01-02"), pct(series[i]), bar})
	}
	table(w, "Figure 1: IPv6 reachability over time (top sites)", []string{"date", "reachable", ""}, rows)
}

// Fig3a renders reachability by rank bucket.
func Fig3a(w io.Writer, fracs [6]float64) {
	rows := make([][]string, 0, 6)
	for i, f := range fracs {
		rows = append(rows, []string{alexa.BucketLabels[i], pct(f)})
	}
	table(w, "Figure 3a: IPv6 reachability by site rank", []string{"bucket", "reachable"}, rows)
}

// Fig3b renders the "how often is IPv6 faster" bars for the two site
// populations.
func Fig3b(w io.Writer, vantage string, top1M, extended float64) {
	table(w, "Figure 3b: how often is the IPv6 download faster ("+vantage+")",
		[]string{"population", "IPv6 faster"},
		[][]string{
			{"Top 1M", pct(top1M)},
			{"Extended (5M)", pct(extended)},
		})
}

// Table1 renders the vantage-point roster.
type VantageInfo struct {
	Name    string
	Start   string
	ASPath  bool
	Listed  bool // white-listed by Google
	Ovcomml bool // commercial (vs academic)
}

// Table1 renders the monitoring vantage points.
func Table1(w io.Writer, infos []VantageInfo) {
	rows := make([][]string, 0, len(infos))
	yn := map[bool]string{true: "Y", false: "N"}
	for _, v := range infos {
		typ := "Acad."
		if v.Ovcomml {
			typ = "Comml."
		}
		rows = append(rows, []string{v.Name, v.Start, yn[v.ASPath], yn[v.Listed], typ})
	}
	table(w, "Table 1: monitoring vantage points", []string{"vantage", "date", "AS_PATH", "W-L", "type"}, rows)
}

// Table2 renders monitoring profiles.
func Table2(w io.Writer, rows []analysis.ProfileRow, all analysis.ProfileRow) {
	header := []string{"", ""}
	for _, r := range rows {
		header = append(header, string(r.Vantage))
	}
	header = append(header, "All")
	cells := [][]string{
		{"Sites", "(total)"}, {"Sites", "kept"},
		{"Dest. ASes", "(IPv4)"}, {"Dest. ASes", "(IPv6)"},
		{"ASes crossed", "(IPv4)"}, {"ASes crossed", "(IPv6)"},
	}
	get := func(r analysis.ProfileRow, i int) string {
		switch i {
		case 0:
			return fmt.Sprintf("%d", r.SitesTotal)
		case 1:
			return fmt.Sprintf("%d", r.SitesKept)
		case 2:
			return fmt.Sprintf("%d", r.DestV4)
		case 3:
			return fmt.Sprintf("%d", r.DestV6)
		case 4:
			return fmt.Sprintf("%d", r.CrossV4)
		default:
			return fmt.Sprintf("%d", r.CrossV6)
		}
	}
	var out [][]string
	for i, c := range cells {
		row := append([]string{}, c...)
		for _, r := range rows {
			row = append(row, get(r, i))
		}
		if i < 2 {
			row = append(row, "NA")
		} else {
			row = append(row, get(all, i))
		}
		out = append(out, row)
	}
	table(w, "Table 2: monitoring profiles per vantage point", header, out)
}

// Table3 renders confidence-failure causes.
func Table3(w io.Writer, rows []analysis.FailureRow) {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			string(r.Vantage),
			fmt.Sprintf("%d", r.Insufficient),
			fmt.Sprintf("%d", r.TransUp), fmt.Sprintf("%d", r.TransDown),
			fmt.Sprintf("%d", r.TrendUp), fmt.Sprintf("%d", r.TrendDown),
			fmt.Sprintf("%d of %d", r.TransFromPath, r.TransitionsAll),
		})
	}
	table(w, "Table 3: causes of confidence target failures",
		[]string{"vantage", "insufficient", "↑", "↓", "↗", "↘", "trans. from path change"}, out)
}

// Table4 renders the site classification.
func Table4(w io.Writer, rows []analysis.ClassRow) {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			string(r.Vantage), fmt.Sprintf("%d", r.DL), fmt.Sprintf("%d", r.SP), fmt.Sprintf("%d", r.DP),
		})
	}
	table(w, "Table 4: sites classification", []string{"vantage", "# DL sites", "# SP sites", "# DP sites"}, out)
}

// Table5 renders the removed-site bias check.
func Table5(w io.Writer, rows []analysis.RemovedBiasRow) {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			string(r.Vantage),
			fmt.Sprintf("%d", r.SPGood), fmt.Sprintf("%d", r.SPBad),
			fmt.Sprintf("%d", r.DPGood), fmt.Sprintf("%d", r.DPBad),
			fmt.Sprintf("%d", r.DLGood), fmt.Sprintf("%d", r.DLBad),
		})
	}
	table(w, "Table 5: classification of removed sites",
		[]string{"vantage", "SP good", "SP bad", "DP good", "DP bad", "DL good", "DL bad"}, out)
}

// Table6 renders DL performance.
func Table6(w io.Writer, rows []analysis.DLPerfRow) {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			string(r.Vantage), fmt.Sprintf("%d", r.Sites), pct(r.FracV4GE),
			fmt.Sprintf("%.1f", r.MeanV4), fmt.Sprintf("%.1f", r.MeanV6),
		})
	}
	table(w, "Table 6: IPv6 vs IPv4 performance (kbytes/sec) for sites in DL",
		[]string{"vantage", "# sites", "IPv4>=IPv6", "IPv4 perf.", "IPv6 perf."}, out)
}

// HopTable renders Table 7 or 9.
func HopTable(w io.Writer, title string, rows []analysis.HopRow) {
	header := []string{"vantage", "fam"}
	for _, l := range analysis.HopLabels {
		header = append(header, l, "# sites")
	}
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		fam := "IPv4"
		if r.Fam == topo.V6 {
			fam = "IPv6"
		}
		row := []string{string(r.Vantage), fam}
		for b := 0; b < analysis.HopBuckets; b++ {
			if r.Count[b] == 0 {
				row = append(row, "-", "0")
			} else {
				row = append(row, fmt.Sprintf("%.1f", r.Speed[b]), fmt.Sprintf("%d", r.Count[b]))
			}
		}
		out = append(out, row)
	}
	table(w, title, header, out)
}

// Table8 renders the SP (H1) results.
func Table8(w io.Writer, rows []analysis.SPRow) {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			string(r.Vantage), pct(r.FracComparable), pct(r.FracZeroMode),
			pct(r.FracSmall), pct(r.FracWorse), fmt.Sprintf("%d", r.NASes),
			fmt.Sprintf("%d", r.XCheckPos), fmt.Sprintf("%d", r.XCheckNeg),
		})
	}
	table(w, "Table 8: IPv6 vs IPv4 for SP destination ASes (H1)",
		[]string{"vantage", "IPv6~IPv4", "zero mode", "small #", "worse", "# ASes", "x-check(+)", "x-check(-)"}, out)
}

// Table10 renders the World IPv6 Day SP results.
func Table10(w io.Writer, rows []analysis.SPRow) {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		other := 0.0
		if r.NASes > 0 {
			other = 1 - r.FracComparable
		}
		out = append(out, []string{
			string(r.Vantage), pct(r.FracComparable), pct(other),
			fmt.Sprintf("%d", r.NASes), fmt.Sprintf("%d", r.XCheckPos),
		})
	}
	table(w, "Table 10: World IPv6 Day — IPv6 vs IPv4 for SP ASes",
		[]string{"vantage", "IPv6~IPv4", "other", "# ASes", "x-check(+)"}, out)
}

// Table11 renders the DP (H2) results.
func Table11(w io.Writer, rows []analysis.DPRow) {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			string(r.Vantage), pct(r.FracComparable), pct(r.FracZeroMode), fmt.Sprintf("%d", r.NASes),
		})
	}
	table(w, "Table 11: IPv6 vs IPv4 for DP destination ASes (H2)",
		[]string{"vantage", "IPv6~IPv4", "zero mode", "# ASes"}, out)
}

// Table12 renders the World IPv6 Day DP results.
func Table12(w io.Writer, rows []analysis.DPRow) {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			string(r.Vantage), pct(r.FracComparable), fmt.Sprintf("%d", r.NASes),
		})
	}
	table(w, "Table 12: World IPv6 Day — IPv6 vs IPv4 for DP ASes",
		[]string{"vantage", "IPv6~IPv4", "# ASes"}, out)
}

// Table13 renders good-AS coverage of DP paths.
func Table13(w io.Writer, rows []analysis.CoverageRow) {
	labels := []string{"100%", "[75%,100%)", "[50%,75%)", "[25%,50%)", "[0%,25%)"}
	header := []string{"% good ASes in path"}
	for _, r := range rows {
		header = append(header, string(r.Vantage))
	}
	out := make([][]string, len(labels))
	for i, l := range labels {
		out[i] = []string{l}
		for _, r := range rows {
			out[i] = append(out[i], pct(r.Frac[i]))
		}
	}
	table(w, "Table 13: 'good' AS coverage in DP paths", header, out)
}
