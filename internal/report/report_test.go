package report

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"v6web/internal/analysis"
	"v6web/internal/topo"
)

func render(f func(*bytes.Buffer)) string {
	var buf bytes.Buffer
	f(&buf)
	return buf.String()
}

func TestFig1(t *testing.T) {
	dates := []time.Time{
		time.Date(2010, 12, 9, 0, 0, 0, 0, time.UTC),
		time.Date(2011, 6, 9, 0, 0, 0, 0, time.UTC),
	}
	out := render(func(b *bytes.Buffer) { Fig1(b, dates, []float64{0.002, 0.011}) })
	if !strings.Contains(out, "2010-12-09") || !strings.Contains(out, "0.2%") {
		t.Fatalf("fig1 output:\n%s", out)
	}
	if !strings.Contains(out, "1.1%") {
		t.Fatalf("fig1 output missing second point:\n%s", out)
	}
	// The bar for 1.1% must be longer than for 0.2%.
	lines := strings.Split(out, "\n")
	var bars []int
	for _, l := range lines {
		if strings.Contains(l, "%") && strings.Contains(l, "#") {
			bars = append(bars, strings.Count(l, "#"))
		}
	}
	if len(bars) != 2 || bars[1] <= bars[0] {
		t.Fatalf("bars not proportional: %v", bars)
	}
}

func TestFig3a(t *testing.T) {
	out := render(func(b *bytes.Buffer) {
		Fig3a(b, [6]float64{0.10, 0.07, 0.05, 0.03, 0.02, 0.011})
	})
	for _, want := range []string{"Top 10", "Top 1M", "10.0%", "1.1%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig3a missing %q:\n%s", want, out)
		}
	}
}

func TestFig3b(t *testing.T) {
	out := render(func(b *bytes.Buffer) { Fig3b(b, "Penn", 0.041, 0.047) })
	if !strings.Contains(out, "Penn") || !strings.Contains(out, "4.1%") || !strings.Contains(out, "4.7%") {
		t.Fatalf("fig3b output:\n%s", out)
	}
}

func TestTable1(t *testing.T) {
	out := render(func(b *bytes.Buffer) {
		Table1(b, []VantageInfo{
			{Name: "Penn", Start: "7/22/09", ASPath: true},
			{Name: "UPCB", Start: "2/28/11", ASPath: true, Listed: true, Ovcomml: true},
		})
	})
	if !strings.Contains(out, "Penn") || !strings.Contains(out, "Acad.") || !strings.Contains(out, "Comml.") {
		t.Fatalf("table1 output:\n%s", out)
	}
}

func TestTable2(t *testing.T) {
	rows := []analysis.ProfileRow{
		{Vantage: "Penn", SitesTotal: 100, SitesKept: 70, DestV4: 30, DestV6: 20, CrossV4: 50, CrossV6: 35},
	}
	all := analysis.ProfileRow{DestV4: 30, DestV6: 20, CrossV4: 55, CrossV6: 40}
	out := render(func(b *bytes.Buffer) { Table2(b, rows, all) })
	for _, want := range []string{"Penn", "100", "70", "NA", "55"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table2 missing %q:\n%s", want, out)
		}
	}
}

func TestTable3(t *testing.T) {
	out := render(func(b *bytes.Buffer) {
		Table3(b, []analysis.FailureRow{
			{Vantage: "Penn", Insufficient: 2807, TransUp: 180, TransDown: 103, TrendUp: 732, TrendDown: 569, TransFromPath: 64, TransitionsAll: 283},
		})
	})
	for _, want := range []string{"2807", "180", "103", "732", "569", "64 of 283"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table3 missing %q:\n%s", want, out)
		}
	}
}

func TestTable4Through6(t *testing.T) {
	out := render(func(b *bytes.Buffer) {
		Table4(b, []analysis.ClassRow{{Vantage: "Penn", DL: 784, SP: 424, DP: 6786}})
	})
	for _, want := range []string{"784", "424", "6786"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table4 missing %q", want)
		}
	}
	out = render(func(b *bytes.Buffer) {
		Table5(b, []analysis.RemovedBiasRow{{Vantage: "Penn", SPGood: 64, SPBad: 8, DPGood: 404, DPBad: 880, DLGood: 111, DLBad: 117}})
	})
	for _, want := range []string{"64", "880", "117"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table5 missing %q", want)
		}
	}
	out = render(func(b *bytes.Buffer) {
		Table6(b, []analysis.DLPerfRow{{Vantage: "Penn", Sites: 784, FracV4GE: 0.96, MeanV4: 35.6, MeanV6: 28.2}})
	})
	for _, want := range []string{"96.0%", "35.6", "28.2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table6 missing %q:\n%s", want, out)
		}
	}
}

func TestHopTable(t *testing.T) {
	rows := []analysis.HopRow{
		{Vantage: "Penn", Fam: topo.V4, Speed: [5]float64{25.4, 39.5, 31.1, 28.5, 22.7}, Count: [5]int{5, 4327, 2318, 567, 179}},
		{Vantage: "Penn", Fam: topo.V6, Speed: [5]float64{0, 104.0, 33.9, 28.7, 22.1}, Count: [5]int{0, 6, 742, 3296, 3352}},
	}
	out := render(func(b *bytes.Buffer) { HopTable(b, "Table 7", rows) })
	for _, want := range []string{"IPv4", "IPv6", "39.5", "4327", "104.0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("hop table missing %q:\n%s", want, out)
		}
	}
	// Empty buckets render as "-".
	if !strings.Contains(out, "-") {
		t.Fatal("empty bucket not dashed")
	}
}

func TestTable8And10(t *testing.T) {
	rows := []analysis.SPRow{
		{Vantage: "Penn", FracComparable: 0.813, FracZeroMode: 0.094, FracSmall: 0.093, NASes: 75, XCheckPos: 47},
	}
	out := render(func(b *bytes.Buffer) { Table8(b, rows) })
	for _, want := range []string{"81.3%", "9.4%", "9.3%", "75", "47"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table8 missing %q:\n%s", want, out)
		}
	}
	out = render(func(b *bytes.Buffer) { Table10(b, rows) })
	if !strings.Contains(out, "18.7%") { // "other" = 1 - comparable
		t.Fatalf("table10 other column:\n%s", out)
	}
	// Zero ASes renders a zero other-column, not 100%.
	out = render(func(b *bytes.Buffer) { Table10(b, []analysis.SPRow{{Vantage: "LU"}}) })
	if strings.Contains(out, "100.0%") {
		t.Fatalf("table10 with 0 ASes shows 100%%:\n%s", out)
	}
}

func TestTable11And12(t *testing.T) {
	rows := []analysis.DPRow{{Vantage: "Penn", FracComparable: 0.03, FracZeroMode: 0.12, NASes: 587}}
	out := render(func(b *bytes.Buffer) { Table11(b, rows) })
	for _, want := range []string{"3.0%", "12.0%", "587"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table11 missing %q:\n%s", want, out)
		}
	}
	out = render(func(b *bytes.Buffer) { Table12(b, rows) })
	if !strings.Contains(out, "3.0%") || strings.Contains(out, "12.0%") {
		t.Fatalf("table12 content wrong:\n%s", out)
	}
}

func TestTable13(t *testing.T) {
	rows := []analysis.CoverageRow{
		{Vantage: "Penn", Frac: [5]float64{0.032, 0.208, 0.588, 0.158, 0.014}, NDsts: 100},
	}
	out := render(func(b *bytes.Buffer) { Table13(b, rows) })
	for _, want := range []string{"100%", "[50%,75%)", "58.8%", "3.2%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table13 missing %q:\n%s", want, out)
		}
	}
}

func TestTableAlignment(t *testing.T) {
	// Header separator must be as wide as the widest cell.
	out := render(func(b *bytes.Buffer) {
		Table4(b, []analysis.ClassRow{{Vantage: "a-very-long-vantage-name", DL: 1, SP: 2, DP: 3}})
	})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 4 {
		t.Fatalf("table too short:\n%s", out)
	}
	sep := lines[2]
	if !strings.Contains(sep, strings.Repeat("-", len("a-very-long-vantage-name"))) {
		t.Fatalf("separator not widened:\n%s", out)
	}
}

func TestRenderStudy(t *testing.T) {
	// An empty study still renders every main-study table; the World
	// IPv6 Day tables appear only when that study is supplied.
	study := analysis.NewStudy()
	out := render(func(b *bytes.Buffer) { RenderStudy(b, study, nil) })
	for _, want := range []string{
		"Table 2", "Table 3", "Table 4", "Table 5", "Table 6",
		"Table 7", "Table 8", "Table 9", "Table 11", "Table 13",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("RenderStudy missing %q:\n%s", want, out)
		}
	}
	for _, absent := range []string{"Table 10", "Table 12"} {
		if strings.Contains(out, absent) {
			t.Fatalf("RenderStudy rendered %q without a v6day study:\n%s", absent, out)
		}
	}
	out = render(func(b *bytes.Buffer) { RenderStudy(b, study, analysis.NewStudy()) })
	for _, want := range []string{"Table 10", "Table 12"} {
		if !strings.Contains(out, want) {
			t.Fatalf("RenderStudy with v6day missing %q:\n%s", want, out)
		}
	}
}
