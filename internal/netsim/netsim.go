// Package netsim is the synthetic data plane: it turns an AS-level
// path plus a site's server characteristics into download speeds and
// per-download times.
//
// The model encodes the paper's two hypotheses as configurable ground
// truth so the measurement-and-analysis pipeline can re-discover them:
//
//   - H1 (data-plane parity): a native edge's quality is a pure
//     function of the edge, independent of address family. IPv6 over
//     the same AS path therefore performs like IPv4, modulo server
//     effects. The V6EdgePenalty knob (default 1.0 = parity) exists
//     for ablation.
//   - H2 (routing differences): IPv6 paths that differ from IPv4 are
//     typically longer or tunnel-ridden; speed degrades with hop
//     count, so routing disparity — not the data plane — produces the
//     observed IPv6 deficit. Tunnels hide hops (shorter apparent AS
//     paths) while paying a quality penalty, reproducing Table 7's
//     low-hop IPv6 artefact.
package netsim

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"v6web/internal/bgp"
	"v6web/internal/det"
	"v6web/internal/topo"
	"v6web/internal/websim"
)

// Config parameterizes the data-plane model.
type Config struct {
	Seed int64

	// BaseRate is the nominal one-hop download speed in kbytes/sec,
	// calibrated to the paper's 20–110 kB/s range.
	BaseRate float64

	// HopAlpha controls per-hop degradation:
	// factor = 1 / (1 + HopAlpha * max(0, hops-1)).
	HopAlpha float64

	// EdgeSigma is the lognormal sigma of per-edge quality.
	EdgeSigma float64

	// VantageSigma spreads vantage-local access quality, producing
	// the cross-vantage level differences of Tables 7 and 9.
	VantageSigma float64

	// TunnelPenalty multiplies the quality of tunnel edges.
	TunnelPenalty float64

	// V6EdgePenalty multiplies every native v6 edge's quality.
	// 1.0 is the paper's validated world (H1 parity); lower values
	// ablate H1.
	V6EdgePenalty float64

	// NoiseRound is the lognormal sigma of per-(site,round) speed
	// variation shared by both families.
	NoiseRound float64

	// NoiseFam is additional per-(site,round,family) variation.
	NoiseFam float64

	// NoiseSample is the lognormal sigma of individual downloads
	// within a round (drives the tool's CI stop rule).
	NoiseSample float64

	// RTTBase and RTTPerHop model per-request setup time (DNS + TCP
	// handshake): setup = RTTBase + EffHops * RTTPerHop. Small pages
	// over long paths pay proportionally more, as in reality.
	RTTBase   time.Duration
	RTTPerHop time.Duration
}

// DefaultConfig returns the calibrated model.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:          seed,
		BaseRate:      95,
		HopAlpha:      0.38,
		EdgeSigma:     0.26,
		VantageSigma:  0.30,
		TunnelPenalty: 0.62,
		V6EdgePenalty: 1.0,
		NoiseRound:    0.10,
		NoiseFam:      0.03,
		NoiseSample:   0.04,
		RTTBase:       20 * time.Millisecond,
		RTTPerHop:     12 * time.Millisecond,
	}
}

// Validate reports config errors.
func (c Config) Validate() error {
	if c.BaseRate <= 0 {
		return fmt.Errorf("netsim: BaseRate %v <= 0", c.BaseRate)
	}
	if c.HopAlpha < 0 {
		return fmt.Errorf("netsim: HopAlpha %v < 0", c.HopAlpha)
	}
	if c.TunnelPenalty <= 0 || c.TunnelPenalty > 1 {
		return fmt.Errorf("netsim: TunnelPenalty %v out of (0,1]", c.TunnelPenalty)
	}
	if c.V6EdgePenalty <= 0 || c.V6EdgePenalty > 1 {
		return fmt.Errorf("netsim: V6EdgePenalty %v out of (0,1]", c.V6EdgePenalty)
	}
	for _, s := range []float64{c.EdgeSigma, c.VantageSigma, c.NoiseRound, c.NoiseFam, c.NoiseSample} {
		if s < 0 {
			return fmt.Errorf("netsim: negative sigma %v", s)
		}
	}
	if c.RTTBase < 0 || c.RTTPerHop < 0 {
		return fmt.Errorf("netsim: negative RTT parameters")
	}
	return nil
}

// Model computes path and download performance over a topology.
type Model struct {
	cfg Config
	g   *topo.Graph
}

// New builds a model over g.
func New(g *topo.Graph, cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Model{cfg: cfg, g: g}, nil
}

// Config returns the model configuration.
func (m *Model) Config() Config { return m.cfg }

// edgeQuality returns the family-independent quality of the native
// edge a—b (order-insensitive). H1 lives here: no family key.
func (m *Model) edgeQuality(a, b int) float64 {
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	return det.Lognormal(0, m.cfg.EdgeSigma, uint64(m.cfg.Seed), uint64(lo), uint64(hi), 0xED6E)
}

// VantageQuality returns the stable local access quality of a vantage
// AS, spreading absolute speed levels across vantage points.
func (m *Model) VantageQuality(vantage int) float64 {
	return det.Lognormal(0, m.cfg.VantageSigma, uint64(m.cfg.Seed), uint64(vantage), 0x7A97)
}

// PathPerf describes the data-plane characteristics of one AS path.
type PathPerf struct {
	Quality    float64 // bottleneck (minimum) edge quality, 1.0 = nominal
	EffHops    int     // true hop count including tunnel-hidden hops
	VisHops    int     // visible AS-path hop count (what BGP shows)
	HasTunnel  bool
	HopFactor  float64 // degradation factor from EffHops
	PathFactor float64 // Quality * HopFactor
}

// PathPerf evaluates a path over family fam. A nil or empty path
// yields a zero PathPerf. A single-AS path (destination in the
// vantage AS) has quality 1 and zero hops.
func (m *Model) PathPerf(p bgp.Path, fam topo.Family) PathPerf {
	if len(p) == 0 {
		return PathPerf{}
	}
	out := PathPerf{Quality: 1, VisHops: p.Hops()}
	for i := 0; i+1 < len(p); i++ {
		n, ok := bgp.EdgeOnPath(m.g, p[i], p[i+1], fam)
		if !ok {
			return PathPerf{}
		}
		q := m.edgeQuality(p[i], p[i+1])
		if n.Tunnel {
			q *= m.cfg.TunnelPenalty
			out.EffHops += 1 + n.HiddenHops
			out.HasTunnel = true
		} else {
			if fam == topo.V6 {
				q *= m.cfg.V6EdgePenalty
			}
			out.EffHops++
		}
		if q < out.Quality {
			out.Quality = q
		}
	}
	out.HopFactor = m.hopFactor(out.EffHops)
	out.PathFactor = out.Quality * out.HopFactor
	return out
}

func (m *Model) hopFactor(hops int) float64 {
	extra := float64(hops - 1)
	if extra < 0 {
		extra = 0
	}
	return 1 / (1 + m.cfg.HopAlpha*extra)
}

// RoundSpeed returns the mean download speed (kbytes/sec) for a site
// fetched from a vantage over the given path and family during one
// monitoring round. tFrac is the round's position in the study, in
// [0,1]; round indexes the per-round noise.
func (m *Model) RoundSpeed(vantage int, site *websim.Site, p bgp.Path, fam topo.Family, tFrac float64, round int) float64 {
	return m.RoundSpeedPerf(m.VantageQuality(vantage), site, m.PathPerf(p, fam), fam, tFrac, round)
}

// RoundSpeedPerf is RoundSpeed with the vantage quality and path
// characteristics precomputed — the monitoring hot path evaluates the
// same (vantage, path) pair for every download of a round, so callers
// cache both and skip the per-call path walk.
func (m *Model) RoundSpeedPerf(vantageQ float64, site *websim.Site, pp PathPerf, fam topo.Family, tFrac float64, round int) float64 {
	if pp.PathFactor == 0 {
		return 0
	}
	srv := site.SrvV4
	if fam == topo.V6 {
		srv = site.SrvV6
	}
	speed := m.cfg.BaseRate * vantageQ * pp.PathFactor * srv
	speed *= site.PerfMultiplier(fam, tFrac)
	// Round-level variation: a shared component (site load, general
	// congestion) plus a small family-specific one.
	seed := uint64(m.cfg.Seed)
	sid := uint64(site.ID)
	speed *= det.Lognormal(0, m.cfg.NoiseRound, seed, sid, uint64(round), 0x4149)
	speed *= det.Lognormal(0, m.cfg.NoiseFam, seed, sid, uint64(round), uint64(fam), 0xFA3)
	return speed
}

// SampleSpeed perturbs a round-mean speed into one observed download's
// speed, using the caller's RNG (the monitoring tool owns sampling
// randomness).
func (m *Model) SampleSpeed(roundSpeed float64, rng *rand.Rand) float64 {
	if roundSpeed <= 0 {
		return 0
	}
	return roundSpeed * math.Exp(rng.NormFloat64()*m.cfg.NoiseSample)
}

// SetupTime returns the per-request setup latency implied by a path:
// RTTBase plus RTTPerHop per effective hop (tunnels pay their hidden
// hops here too).
func (m *Model) SetupTime(pp PathPerf) time.Duration {
	return m.cfg.RTTBase + time.Duration(pp.EffHops)*m.cfg.RTTPerHop
}

// DownloadTimeSetup converts a page size in bytes and a speed in
// kbytes/sec into a wall-clock duration with the given per-request
// setup overhead.
func DownloadTimeSetup(pageBytes int, speedKBps float64, setup time.Duration) time.Duration {
	if speedKBps <= 0 {
		return 0
	}
	secs := float64(pageBytes) / 1000 / speedKBps
	return setup + time.Duration(secs*float64(time.Second))
}

// DownloadTime is DownloadTimeSetup with the default fixed setup,
// kept for callers without path context.
func DownloadTime(pageBytes int, speedKBps float64) time.Duration {
	return DownloadTimeSetup(pageBytes, speedKBps, 60*time.Millisecond)
}

// SpeedFrom inverts DownloadTime: the speed in kbytes/sec implied by
// downloading pageBytes in d. This is what the monitoring tool
// records.
func SpeedFrom(pageBytes int, d time.Duration) float64 {
	const setup = 60 * time.Millisecond
	if d <= setup {
		return 0
	}
	return float64(pageBytes) / 1000 / (d - setup).Seconds()
}
