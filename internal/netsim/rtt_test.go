package netsim

import (
	"testing"
	"time"
)

func TestSetupTimeGrowsWithHops(t *testing.T) {
	f := newFixture(t, 200, 21)
	short := f.m.SetupTime(PathPerf{EffHops: 1})
	long := f.m.SetupTime(PathPerf{EffHops: 6})
	if long <= short {
		t.Fatalf("setup time not growing: %v vs %v", short, long)
	}
	want := f.m.Config().RTTBase + 6*f.m.Config().RTTPerHop
	if long != want {
		t.Fatalf("setup %v, want %v", long, want)
	}
}

func TestSetupTimePenalizesTunnels(t *testing.T) {
	f := newFixture(t, 200, 22)
	// A tunnel hiding 3 hops pays for 4 effective hops even though
	// the AS path shows 1.
	visible := f.m.SetupTime(PathPerf{EffHops: 1, VisHops: 1})
	tunneled := f.m.SetupTime(PathPerf{EffHops: 4, VisHops: 1, HasTunnel: true})
	if tunneled <= visible {
		t.Fatalf("tunnel setup not penalized: %v vs %v", visible, tunneled)
	}
}

func TestDownloadTimeSetup(t *testing.T) {
	d := DownloadTimeSetup(10000, 100, 50*time.Millisecond)
	want := 50*time.Millisecond + 100*time.Millisecond // 10 kB at 100 kB/s
	if d != want {
		t.Fatalf("duration %v, want %v", d, want)
	}
	if DownloadTimeSetup(10000, 0, time.Millisecond) != 0 {
		t.Fatal("zero speed should yield zero duration")
	}
}

func TestRTTValidation(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.RTTBase = -time.Millisecond
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative RTTBase accepted")
	}
	cfg2 := DefaultConfig(1)
	cfg2.RTTPerHop = -time.Millisecond
	if err := cfg2.Validate(); err == nil {
		t.Fatal("negative RTTPerHop accepted")
	}
}
