package netsim

import (
	"math/rand"
	"testing"
	"time"

	"v6web/internal/alexa"
	"v6web/internal/bgp"
	"v6web/internal/topo"
	"v6web/internal/websim"
)

type fixture struct {
	g   *topo.Graph
	m   *Model
	cat *websim.Catalog
}

func newFixture(t *testing.T, nAS int, seed int64) *fixture {
	t.Helper()
	g, err := topo.Generate(topo.DefaultGenConfig(nAS, seed))
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(g, DefaultConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	ad := alexa.NewAdoption(seed, alexa.DefaultTimeline())
	cat, err := websim.NewCatalog(g, ad, websim.DefaultConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{g: g, m: m, cat: cat}
}

func (f *fixture) pathTo(t *testing.T, dst int, fam topo.Family) bgp.Path {
	t.Helper()
	c := bgp.NewComputer(f.g)
	c.Routes(dst, fam)
	return c.PathFrom(0)
}

func TestConfigValidate(t *testing.T) {
	g, _ := topo.Generate(topo.DefaultGenConfig(100, 1))
	bad := []func(*Config){
		func(c *Config) { c.BaseRate = 0 },
		func(c *Config) { c.HopAlpha = -1 },
		func(c *Config) { c.TunnelPenalty = 0 },
		func(c *Config) { c.TunnelPenalty = 1.2 },
		func(c *Config) { c.V6EdgePenalty = 0 },
		func(c *Config) { c.EdgeSigma = -0.1 },
	}
	for i, mut := range bad {
		cfg := DefaultConfig(1)
		mut(&cfg)
		if _, err := New(g, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestEdgeQualityFamilyParity(t *testing.T) {
	// H1 ground truth: the same native edge has identical quality
	// regardless of which direction or family queries it.
	f := newFixture(t, 300, 2)
	if f.m.edgeQuality(3, 7) != f.m.edgeQuality(7, 3) {
		t.Fatal("edge quality direction-sensitive")
	}
	p := f.pathTo(t, 150, topo.V4)
	if p == nil || len(p) < 2 {
		t.Skip("degenerate path")
	}
	// Evaluate the same physical path under both families where
	// every edge is v6-enabled; quality must be identical with
	// V6EdgePenalty = 1.
	ppV4 := f.m.PathPerf(p, topo.V4)
	// Confirm the v4 evaluation is deterministic.
	if f.m.PathPerf(p, topo.V4) != ppV4 {
		t.Fatal("PathPerf not deterministic")
	}
}

func TestPathPerfSameVisiblePathSameQuality(t *testing.T) {
	// For a path whose every edge is natively v6-enabled, v4 and v6
	// PathPerf agree exactly under parity.
	f := newFixture(t, 600, 3)
	c := bgp.NewComputer(f.g)
	checked := 0
	for dst := 0; dst < f.g.N() && checked < 5; dst++ {
		if !f.g.AS(dst).V6 {
			continue
		}
		c.Routes(dst, topo.V6)
		for src := 0; src < f.g.N(); src++ {
			if !f.g.AS(src).V6 || src == dst {
				continue
			}
			p := bgp.Path(c.PathFrom(src))
			if p == nil {
				continue
			}
			// All edges native v6?
			allNative := true
			for i := 0; i+1 < len(p); i++ {
				n, ok := bgp.EdgeOnPath(f.g, p[i], p[i+1], topo.V6)
				if !ok || n.Tunnel {
					allNative = false
					break
				}
				if _, ok4 := bgp.EdgeOnPath(f.g, p[i], p[i+1], topo.V4); !ok4 {
					allNative = false
					break
				}
			}
			if !allNative {
				continue
			}
			v6pp := f.m.PathPerf(p, topo.V6)
			v4pp := f.m.PathPerf(p, topo.V4)
			if v6pp.Quality != v4pp.Quality || v6pp.EffHops != v4pp.EffHops {
				t.Fatalf("parity broken on %v: v6=%+v v4=%+v", p, v6pp, v4pp)
			}
			checked++
			break
		}
	}
	if checked == 0 {
		t.Skip("no all-native v6 path found")
	}
}

func TestPathPerfTunnel(t *testing.T) {
	f := newFixture(t, 2000, 4)
	// Find a tunnel edge.
	for i := 0; i < f.g.N(); i++ {
		for _, n := range f.g.RawNeighbors(i) {
			if !n.Tunnel || n.Rel != topo.RelProvider {
				continue
			}
			p := bgp.Path{i, n.Idx}
			pp := f.m.PathPerf(p, topo.V6)
			if !pp.HasTunnel {
				t.Fatal("tunnel not flagged")
			}
			if pp.EffHops != 1+n.HiddenHops {
				t.Fatalf("eff hops %d, want %d", pp.EffHops, 1+n.HiddenHops)
			}
			if pp.VisHops != 1 {
				t.Fatalf("visible hops %d, want 1", pp.VisHops)
			}
			// Tunnel path must be slower than an equivalent native
			// 1-hop path would be.
			if pp.PathFactor >= f.m.hopFactor(1) {
				t.Fatalf("tunnel path factor %v not penalized", pp.PathFactor)
			}
			return
		}
	}
	t.Skip("no tunnel in this seed")
}

func TestHopFactorMonotone(t *testing.T) {
	f := newFixture(t, 100, 5)
	prev := f.m.hopFactor(0)
	for h := 1; h <= 8; h++ {
		cur := f.m.hopFactor(h)
		if cur > prev {
			t.Fatalf("hop factor not decreasing at %d", h)
		}
		prev = cur
	}
	if f.m.hopFactor(0) != 1 || f.m.hopFactor(1) != 1 {
		t.Fatal("0/1-hop factor should be 1")
	}
}

func TestPathPerfEmpty(t *testing.T) {
	f := newFixture(t, 100, 6)
	if pp := f.m.PathPerf(nil, topo.V4); pp.PathFactor != 0 {
		t.Fatal("nil path has nonzero factor")
	}
	pp := f.m.PathPerf(bgp.Path{5}, topo.V4)
	if pp.Quality != 1 || pp.EffHops != 0 || pp.HopFactor != 1 {
		t.Fatalf("self path perf %+v", pp)
	}
}

func TestPathPerfMissingEdge(t *testing.T) {
	f := newFixture(t, 100, 7)
	// Find two non-adjacent ASes.
	for b := 1; b < f.g.N(); b++ {
		if _, ok := bgp.EdgeOnPath(f.g, 0, b, topo.V4); !ok {
			pp := f.m.PathPerf(bgp.Path{0, b}, topo.V4)
			if pp.PathFactor != 0 {
				t.Fatal("missing edge produced nonzero factor")
			}
			return
		}
	}
	t.Skip("AS 0 adjacent to all")
}

func TestRoundSpeedPlausibleRange(t *testing.T) {
	f := newFixture(t, 600, 8)
	p := f.pathTo(t, 300, topo.V4)
	site := f.cat.Site(1, 100)
	sp := f.m.RoundSpeed(0, site, p, topo.V4, 0.5, 3)
	if sp <= 1 || sp > 500 {
		t.Fatalf("round speed %v kB/s implausible", sp)
	}
}

func TestRoundSpeedDeterministic(t *testing.T) {
	f := newFixture(t, 400, 9)
	p := f.pathTo(t, 200, topo.V4)
	site := f.cat.Site(2, 50)
	a := f.m.RoundSpeed(0, site, p, topo.V4, 0.3, 7)
	b := f.m.RoundSpeed(0, site, p, topo.V4, 0.3, 7)
	if a != b {
		t.Fatal("round speed not deterministic")
	}
	c := f.m.RoundSpeed(0, site, p, topo.V4, 0.3, 8)
	if a == c {
		t.Fatal("round noise absent")
	}
}

func TestRoundSpeedBadV6Server(t *testing.T) {
	f := newFixture(t, 600, 10)
	// Find a dual SL site with a bad v6 server.
	for id := int64(0); id < 50000; id++ {
		s := f.cat.Site(alexa.SiteID(id), 50)
		if s.V6AS < 0 || s.DL() || !s.BadV6Server {
			continue
		}
		if !f.g.AS(s.V4AS).V6 {
			continue
		}
		p := f.pathTo(t, s.V4AS, topo.V4)
		// Average over rounds to wash noise out.
		var v4sum, v6sum float64
		for r := 0; r < 40; r++ {
			v4sum += f.m.RoundSpeed(0, s, p, topo.V4, 0.5, r)
			v6sum += f.m.RoundSpeed(0, s, p, topo.V6, 0.5, r)
		}
		if v6sum >= v4sum*0.9 {
			t.Fatalf("bad v6 server not slower: v6=%v v4=%v", v6sum/40, v4sum/40)
		}
		return
	}
	t.Skip("no bad-server SL site found")
}

func TestSampleSpeedNoise(t *testing.T) {
	f := newFixture(t, 100, 11)
	rng := rand.New(rand.NewSource(1))
	var sum float64
	n := 2000
	for i := 0; i < n; i++ {
		v := f.m.SampleSpeed(50, rng)
		if v <= 0 {
			t.Fatal("non-positive sample speed")
		}
		sum += v
	}
	mean := sum / float64(n)
	if mean < 47 || mean > 53 {
		t.Fatalf("sample mean %v far from 50", mean)
	}
	if f.m.SampleSpeed(0, rng) != 0 {
		t.Fatal("zero round speed should sample to 0")
	}
}

func TestDownloadTimeRoundTrip(t *testing.T) {
	page := 30000
	speed := 45.0
	d := DownloadTime(page, speed)
	if d <= 0 {
		t.Fatal("non-positive download time")
	}
	got := SpeedFrom(page, d)
	if got < speed*0.999 || got > speed*1.001 {
		t.Fatalf("speed round trip: %v -> %v", speed, got)
	}
	if DownloadTime(page, 0) != 0 {
		t.Fatal("zero speed should give zero duration")
	}
	if SpeedFrom(page, 10*time.Millisecond) != 0 {
		t.Fatal("sub-setup duration should give zero speed")
	}
}

func TestVantageQualitySpread(t *testing.T) {
	f := newFixture(t, 300, 12)
	qs := map[float64]bool{}
	for v := 0; v < 10; v++ {
		qs[f.m.VantageQuality(v)] = true
	}
	if len(qs) < 9 {
		t.Fatalf("vantage qualities collide: %d distinct", len(qs))
	}
}

func TestSpeedDecreasesWithHops(t *testing.T) {
	// Aggregate: mean PathFactor at higher hop counts is lower
	// (the Table 7/9 shape).
	f := newFixture(t, 1500, 13)
	c := bgp.NewComputer(f.g)
	sums := map[int][2]float64{} // hops -> {sum, count}
	for dst := 0; dst < f.g.N(); dst += 13 {
		c.Routes(dst, topo.V4)
		for src := 0; src < f.g.N(); src += 17 {
			p := bgp.Path(c.PathFrom(src))
			if p == nil || p.Hops() < 1 || p.Hops() > 5 {
				continue
			}
			pp := f.m.PathPerf(p, topo.V4)
			e := sums[p.Hops()]
			e[0] += pp.PathFactor
			e[1]++
			sums[p.Hops()] = e
		}
	}
	mean := func(h int) float64 {
		e := sums[h]
		if e[1] == 0 {
			return -1
		}
		return e[0] / e[1]
	}
	m2, m4 := mean(2), mean(4)
	if m2 < 0 || m4 < 0 {
		t.Skip("not enough path-length diversity")
	}
	if m4 >= m2 {
		t.Fatalf("path factor not decreasing: 2 hops %v, 4 hops %v", m2, m4)
	}
}
