module v6web

go 1.21
