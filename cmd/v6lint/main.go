// Command v6lint runs the repo's custom determinism/lock/fingerprint
// analyzer suite (internal/lint) over Go packages.
//
// Usage:
//
//	v6lint [-only a,b] [packages...]
//
// Packages default to ./... relative to the current directory. The
// tool exits 0 when no findings remain, 1 otherwise, printing one
// finding per line:
//
//	file:line:col: message [analyzer]
//
// v6lint is also `go vet -vettool` compatible: it implements the vet
// driver protocol (-V=full, -flags, and the single-package .cfg
// invocation), so CI can run
//
//	go build -o bin/v6lint ./cmd/v6lint
//	go vet -vettool=bin/v6lint ./...
//
// and get per-package caching from the go command. The five analyzers
// and their //v6lint:* escape hatches are documented in internal/lint
// and in DESIGN.md's "Determinism invariants" section.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"strings"

	"v6web/internal/lint"
)

func main() {
	// go vet driver protocol: version probe, flag discovery, and the
	// single-package unit-checker invocation, recognized before normal
	// flag parsing.
	args := os.Args[1:]
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full":
			fmt.Println("v6lint version v1.0.0")
			return
		case a == "-flags" || a == "--flags":
			// No analyzer-specific flags; go vet requires valid JSON.
			fmt.Println("[]")
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		if err := unitCheck(args[0]); err != nil {
			fmt.Fprintln(os.Stderr, "v6lint:", err)
			os.Exit(1)
		}
		return
	}

	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "v6lint:", err)
		os.Exit(2)
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "v6lint:", err)
		os.Exit(2)
	}
	n, err := lint.Run(dir, patterns, analyzers, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "v6lint:", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "v6lint: %d finding(s)\n", n)
		os.Exit(1)
	}
}

func selectAnalyzers(only string) ([]*lint.Analyzer, error) {
	if only == "" {
		return lint.Analyzers(), nil
	}
	byName := map[string]*lint.Analyzer{}
	for _, a := range lint.Analyzers() {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(only, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// vetConfig mirrors the JSON cmd/go writes for each vet unit.
type vetConfig struct {
	ID          string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	VetxOnly    bool
	VetxOutput  string
}

// unitCheck implements the go vet single-package protocol: typecheck
// the unit from the config's file lists and export data, run the
// suite, report findings on stderr with a nonzero exit.
func unitCheck(cfgPath string) error {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return fmt.Errorf("parsing %s: %w", cfgPath, err)
	}
	// The analyzers carry no cross-package facts, but cmd/go reads the
	// vetx output file when present; write it first so a diagnostic
	// exit does not look like a crash.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return err
		}
	}
	if cfg.VetxOnly {
		return nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		files = append(files, f)
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: imp, Sizes: types.SizesFor("gc", runtime.GOARCH)}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return fmt.Errorf("typechecking %s: %w", cfg.ImportPath, err)
	}
	pkg := &lint.Package{Path: cfg.ImportPath, Fset: fset, Files: files, Pkg: tpkg, Info: info}
	diags, err := lint.RunAnalyzers(pkg, lint.Analyzers())
	if err != nil {
		return err
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
	return nil
}
