// Command v6mon runs the full monitoring study — topology, ranked
// list, six vantage points, weekly rounds, World IPv6 Day — and saves
// the measurement database as CSV for later analysis with v6report.
//
// Usage:
//
//	v6mon -out data/ [-seed 42] [-ases 1500] [-sites 20000] [-rounds 35]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"v6web/internal/core"
)

func main() {
	var (
		out    = flag.String("out", "v6web-data", "output directory for the measurement CSVs")
		seed   = flag.Int64("seed", 42, "deterministic scenario seed")
		ases   = flag.Int("ases", 1500, "number of ASes in the synthetic topology")
		sites  = flag.Int("sites", 20000, "ranked-list size (stand-in for the top 1M)")
		rounds = flag.Int("rounds", 35, "weekly monitoring rounds")
		quiet  = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	cfg := core.DefaultConfig(*seed)
	cfg.NASes = *ases
	cfg.ListSize = *sites
	cfg.Rounds = *rounds
	cfg.Vantages = core.ScaledVantages(*rounds)

	s, err := core.NewScenario(cfg)
	if err != nil {
		fatal(err)
	}
	if !*quiet {
		fmt.Printf("topology: %d ASes (%d v6-capable), list: %d sites, rounds: %d\n",
			s.Graph.N(), s.Graph.CountV6(), cfg.ListSize, cfg.Rounds)
	}
	if err := s.Run(); err != nil {
		fatal(err)
	}
	if err := s.RunWorldV6Day(); err != nil {
		fatal(err)
	}
	if !*quiet {
		fmt.Printf("main study: %v\n", s.DB)
		fmt.Printf("world ipv6 day: %v\n", s.V6DayDB)
	}
	if err := s.DB.Save(filepath.Join(*out, "main")); err != nil {
		fatal(err)
	}
	if err := s.V6DayDB.Save(filepath.Join(*out, "v6day")); err != nil {
		fatal(err)
	}
	if !*quiet {
		fmt.Printf("saved to %s\n", *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "v6mon:", err)
	os.Exit(1)
}
