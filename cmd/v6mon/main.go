// Command v6mon runs the full monitoring campaign — topology, ranked
// list, six vantage points, weekly rounds, World IPv6 Day — through
// the resumable campaign runner, and saves the measurement databases
// as CSV for later analysis with v6report.
//
// The campaign checkpoints its completed rounds (crash-safe,
// append-only directories under <out>/checkpoints) every
// -checkpoint-every rounds and on SIGINT/SIGTERM, so a graceful
// interrupt loses at most the round in flight and a hard kill at
// most the cadence. Restarting with -resume picks up from the last
// checkpoint and produces byte-identical final CSVs to a
// never-interrupted run. Checkpoints are written as binary .v6db
// snapshots by default (-format csv keeps the old CSV checkpoints);
// resume auto-detects either format, and the final measurement CSVs
// are the same regardless.
//
// The campaign's world can come from a declarative scenario pack
// (-scenario, internal/scenario) instead of the shape flags: a
// built-in pack name or a pack file, with -set applying dotted-path
// overrides on top. `v6mon -scenario list` prints the catalog.
//
// Usage:
//
//	v6mon -out data/ [-seed 42] [-ases 1500] [-sites 20000] [-rounds 35]
//	      [-checkpoint-every 5] [-format binary|csv] [-q]
//	v6mon -out data/ -scenario world-ipv6-day              # a built-in pack
//	v6mon -out data/ -scenario my.json -set topo.ases=500  # a pack file, scaled
//	v6mon -out data/ -resume          # continue a killed campaign (same flags)
//	v6mon -out data/ -stop-after 10   # checkpoint and exit after round 10
//	v6mon -out data/ -shards 4        # split across 4 local worker processes
//
// With -shards N > 1 the campaign runs as N site-range shards in
// worker processes (internal/shard): each worker measures its slice
// and streams columnar binary frames back; the coordinator merges
// them into CSVs byte-identical to a single-process run. Workers
// checkpoint per shard under <out>/shards, so a killed worker costs
// one shard-round and an interrupted coordinator continues when the
// same command is rerun.
//
// -faults arms the deterministic chaos layer (internal/fault): on the
// sharded path it injects filesystem faults at worker checkpoint
// commits and wire faults on the coordinator's streams, and the
// retry/backoff layer must still deliver byte-identical CSVs. Planned
// vantage outages are campaign state, not faults — declare them in a
// scenario pack's "faults" section (see the vantage-outages built-in).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"v6web/internal/cli"
	"v6web/internal/core"
	"v6web/internal/fault"
	"v6web/internal/scenario"
	"v6web/internal/shard"
	"v6web/internal/store"
)

func main() {
	shard.MaybeWorker()
	var (
		out       = flag.String("out", "v6web-data", "output directory for the measurement CSVs and checkpoints")
		seed      = flag.Int64("seed", 42, "deterministic scenario seed")
		ases      = flag.Int("ases", 1500, "number of ASes in the synthetic topology")
		sites     = flag.Int("sites", 20000, "ranked-list size (stand-in for the top 1M)")
		rounds    = flag.Int("rounds", 35, "weekly monitoring rounds")
		pack      = flag.String("scenario", "", "scenario pack: a built-in name, a pack file, or \"list\" to print the catalog (replaces -seed/-ases/-sites/-rounds; combining them is an error)")
		quiet     = flag.Bool("q", false, "suppress progress output")
		resume    = flag.Bool("resume", false, "resume the campaign from the last checkpoint under -out")
		every     = flag.Int("checkpoint-every", 5, "checkpoint after this many completed rounds (0 disables checkpointing; SIGINT checkpoints regardless)")
		stopAfter = flag.Int("stop-after", 0, "checkpoint and exit after this round completes (0 runs to the end)")
		shards    = flag.Int("shards", 1, "split the campaign across this many local worker processes (1 runs in-process)")
		format    = flag.String("format", "binary", "checkpoint snapshot format: binary or csv (the final measurement CSVs are unaffected)")
		faults    = flag.String("faults", "", "deterministic chaos plan, e.g. seed=7,fs=0.1,wire.cut=0.3 (unsharded runs take fs faults only and have no retry layer, so an injected checkpoint fault aborts the run)")
		frameTime = flag.Duration("frame-timeout", 0, "sharded: max silence on a worker stream before the shard attempt is retried (0 uses the default watchdog; needs -shards > 1)")
	)
	var sets scenario.Overrides
	flag.Var(&sets, "set", "spec override as a dotted path, e.g. -set topo.ases=500 (repeatable; needs -scenario)")
	flag.Parse()

	if *pack == "list" {
		if err := scenario.Describe(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	if *pack != "" {
		if bad := cli.ExplicitFlags("seed", "ases", "sites", "rounds"); len(bad) > 0 {
			fatal(fmt.Errorf("-%s applies only without -scenario; use -set spec overrides instead (e.g. -set topo.ases=500)", strings.Join(bad, ", -")))
		}
	}
	cfg, cfgErr := resolveConfig(*pack, sets, *seed, *ases, *sites, *rounds, *quiet)
	if cfgErr != nil {
		fatal(cfgErr)
	}

	ckptFormat, err := store.ParseSnapshotFormat(*format)
	if err != nil {
		fatal(err)
	}

	var fc *fault.Config
	if *faults != "" {
		fc, err = fault.ParseFlag(*faults)
		if err != nil {
			fatal(err)
		}
	}

	if *stopAfter > 0 && *every <= 0 {
		fatal(fmt.Errorf("-stop-after needs -checkpoint-every > 0, or the stopped campaign cannot be resumed"))
	}
	if *shards > 1 {
		if *resume || *stopAfter > 0 {
			fatal(fmt.Errorf("-shards does not combine with -resume or -stop-after; workers resume from their own shard checkpoints, so just rerun the same command"))
		}
		runSharded(cfg, *out, *shards, *every, ckptFormat, fc, *frameTime, *quiet)
		return
	}
	if *frameTime > 0 {
		fatal(fmt.Errorf("-frame-timeout guards the worker streams; it needs -shards > 1"))
	}
	if fc != nil && (fc.Wire != fault.WirePlan{}) {
		fatal(fmt.Errorf("wire faults exist only at the shard boundary; they need -shards > 1"))
	}

	// SIGINT/SIGTERM cancel the campaign at the next round boundary;
	// the runner checkpoints the completed rounds before returning.
	ctx, stop := cli.SignalContext()
	defer stop()

	ckpt := store.NewCheckpointBackend(*out)
	ckpt.Format = ckptFormat
	ckpt.Fingerprint = cfg.Fingerprint()
	if fc != nil {
		// Chaos drill for the checkpoint path: filesystem faults land
		// on the checkpoint log's commit points, deterministically per
		// fingerprint. With no retry layer here, a drawn fault is fatal.
		ckpt.Hook = fault.New(*fc, cfg.Fingerprint()).FSHook()
	}

	var s *core.Scenario
	if *resume {
		s, err = core.Resume(cfg, ckpt)
		if err != nil {
			fatal(err)
		}
		if !*quiet {
			fmt.Printf("resuming from checkpoint: round %d/%d\n", s.RoundsDone(), cfg.Rounds)
		}
	} else {
		s, err = core.NewScenario(cfg)
		if err != nil {
			fatal(err)
		}
		if !*quiet {
			fmt.Printf("topology: %d ASes (%d v6-capable), list: %d sites, rounds: %d\n",
				s.Graph.N(), s.Graph.CountV6(), cfg.ListSize, cfg.Rounds)
		}
	}

	opts := []core.RunOption{}
	if !*quiet {
		opts = append(opts, core.WithObserver(func(ev core.RoundEvent) {
			if ev.Outage {
				fmt.Printf("round %2d/%d  %-14s  offline (scheduled outage)\n",
					ev.Round+1, cfg.Rounds, ev.Vantage)
				return
			}
			fmt.Printf("round %2d/%d  %-14s  %6d sites  %5d dual  %5d measured  (%v)\n",
				ev.Round+1, cfg.Rounds, ev.Vantage, ev.Stats.Sites, ev.Stats.Dual,
				ev.Stats.Measured, ev.Elapsed.Round(time.Millisecond))
		}))
	}
	if *every > 0 {
		opts = append(opts, core.WithBackend(ckpt), core.WithCheckpoint(*every))
	}
	if *stopAfter > 0 {
		opts = append(opts, core.WithRounds(0, *stopAfter))
	}

	if err := s.RunContext(ctx, opts...); err != nil {
		if errors.Is(err, context.Canceled) {
			interrupted(s, cfg, *every)
		}
		fatal(err)
	}
	if s.RoundsDone() < cfg.Rounds {
		if !*quiet {
			fmt.Printf("stopped after round %d/%d; checkpoint saved — rerun with -resume to continue\n",
				s.RoundsDone(), cfg.Rounds)
		}
		return
	}

	if err := s.RunWorldV6DayContext(ctx); err != nil {
		if errors.Is(err, context.Canceled) {
			// The main study is checkpointed; the short side experiment
			// simply reruns on resume.
			interrupted(s, cfg, *every)
		}
		fatal(err)
	}

	if !*quiet {
		fmt.Printf("main study: %v\n", s.DB)
		fmt.Printf("world ipv6 day: %v\n", s.V6DayDB)
	}
	if err := cli.SaveCompleted(*out, cfg.Rounds, cfg.Fingerprint(), s.DB, s.V6DayDB); err != nil {
		fatal(err)
	}
	// The final CSVs are the product; the checkpoint log (up to Keep
	// full database copies) is scratch once the campaign completed.
	if *every > 0 {
		if err := os.RemoveAll(filepath.Join(*out, "checkpoints")); err != nil && !*quiet {
			fmt.Fprintf(os.Stderr, "v6mon: could not remove checkpoints: %v\n", err)
		}
	}
	if !*quiet {
		fmt.Printf("saved to %s\n", *out)
	}
}

// runSharded is the -shards path: worker processes measure site-range
// slices, the coordinator merges their frames, and everything after
// the main study (World IPv6 Day, saving) runs locally as usual.
func runSharded(cfg core.Config, out string, shards, every int, format store.SnapshotFormat, fc *fault.Config, frameTime time.Duration, quiet bool) {
	ctx, stop := cli.SignalContext()
	defer stop()

	opt := shard.Options{Workers: shards, CheckpointEvery: every, CheckpointFormat: format, Faults: fc}
	if frameTime > 0 {
		opt.Retry.Timeout = frameTime
	}
	if every > 0 {
		opt.Dir = filepath.Join(out, "shards")
	}
	if !quiet {
		opt.Log = os.Stdout
		fmt.Printf("sharding campaign across %d workers (list: %d sites, rounds: %d)\n",
			shards, cfg.ListSize, cfg.Rounds)
	}
	start := time.Now()
	s, st, err := shard.Run(ctx, cfg, opt)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			if opt.Dir != "" {
				cli.Drained("v6mon", "interrupted; shard checkpoints saved — rerun the same command to continue", true)
			}
			cli.Drained("v6mon", "interrupted; -checkpoint-every was 0, so progress is lost", false)
		}
		fatal(err)
	}
	if !quiet {
		fmt.Printf("%d shards merged in %v total (%d retries, merge %v)\n",
			st.Shards, time.Since(start).Round(time.Millisecond), st.Retries,
			st.MergeDur.Round(time.Millisecond))
	}
	if err := s.RunWorldV6DayContext(ctx); err != nil {
		fatal(err)
	}
	if !quiet {
		fmt.Printf("main study: %v\n", s.DB)
		fmt.Printf("world ipv6 day: %v\n", s.V6DayDB)
	}
	if err := cli.SaveCompleted(out, cfg.Rounds, cfg.Fingerprint(), s.DB, s.V6DayDB); err != nil {
		fatal(err)
	}
	if opt.Dir != "" {
		if err := os.RemoveAll(opt.Dir); err != nil && !quiet {
			fmt.Fprintf(os.Stderr, "v6mon: could not remove shard checkpoints: %v\n", err)
		}
	}
	if !quiet {
		fmt.Printf("saved to %s\n", out)
	}
}

// resolveConfig builds the campaign config from a scenario pack (when
// -scenario is given) or from the classic shape flags.
func resolveConfig(pack string, sets scenario.Overrides, seed int64, ases, sites, rounds int, quiet bool) (core.Config, error) {
	if pack == "" {
		if len(sets) > 0 {
			return core.Config{}, fmt.Errorf("-set overrides a scenario spec; it needs -scenario")
		}
		cfg := core.DefaultConfig(seed)
		cfg.NASes = ases
		cfg.ListSize = sites
		cfg.Rounds = rounds
		cfg.Vantages = core.ScaledVantages(rounds)
		return cfg, nil
	}
	comp, err := scenario.LoadCompiled(pack, sets)
	if err != nil {
		return core.Config{}, err
	}
	if !quiet && comp.Name != "" {
		fmt.Printf("scenario: %s — %s\n", comp.Name, comp.Doc)
	}
	return comp.Config, nil
}

// interrupted reports a graceful shutdown and exits: 0 when the
// shutdown checkpoint makes the drain resumable, 1 when checkpointing
// was off and progress is lost.
func interrupted(s *core.Scenario, cfg core.Config, every int) {
	if every > 0 {
		cli.Drained("v6mon", fmt.Sprintf("interrupted at round %d/%d; checkpoint saved — rerun with -resume to continue",
			s.RoundsDone(), cfg.Rounds), true)
	}
	cli.Drained("v6mon", fmt.Sprintf("interrupted at round %d/%d; checkpointing disabled, progress lost",
		s.RoundsDone(), cfg.Rounds), false)
}

func fatal(err error) { cli.Fatal("v6mon", err) }
