// Command benchjson condenses `go test -bench` output into a JSON
// perf-trajectory point: a map from benchmark name to its ns/op and
// every shape metric attached via b.ReportMetric.
//
// It reads either `go test -json` event streams or plain benchmark
// output on stdin, so both work:
//
//	go test -run '^$' -bench . -benchtime 1x -json . | benchjson -o BENCH_PR4.json
//	go test -run '^$' -bench . -benchtime 1x . | benchjson
//
// CI commits the result per PR, so the repo carries a comparable
// series of benchmark shapes and timings across its history. Every
// point leads with a `_host` entry (CPU model, GOMAXPROCS, NumCPU,
// and — via -workers — the sharded-campaign worker count) so timing
// deltas can be attributed to code rather than to the machine.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// testEvent is the subset of the `go test -json` event schema we need.
type testEvent struct {
	Action string `json:"Action"`
	Output string `json:"Output"`
}

// gomaxprocsSuffix strips the -N parallelism suffix go's bench runner
// appends to benchmark names.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseBenchLine parses one benchmark result line:
//
//	BenchmarkName-8    5    12419054 ns/op    207.0 sites-kept-v0
//
// returning the bare name and its metrics, or ok=false for any other
// output line.
func parseBenchLine(line string) (name string, metrics map[string]float64, ok bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return "", nil, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return "", nil, false
	}
	iters, err := strconv.ParseFloat(fields[1], 64)
	if err != nil {
		return "", nil, false
	}
	metrics = map[string]float64{"iterations": iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", nil, false
		}
		metrics[fields[i+1]] = v
	}
	name = gomaxprocsSuffix.ReplaceAllString(fields[0], "")
	return name, metrics, true
}

// hostJSON renders the `_host` entry: the machine context without
// which a trajectory point cannot be compared across PRs (a parallel
// speedup on 16 cores and a slowdown on 1 core are the same code).
// workers > 0 records the sharded-campaign worker count used for the
// run's BenchmarkShardedPaperScaleMini numbers.
func hostJSON(workers int) string {
	parts := []string{
		fmt.Sprintf("%q: %q", "cpu_model", cpuModel()),
		fmt.Sprintf("%q: %d", "gomaxprocs", runtime.GOMAXPROCS(0)),
		fmt.Sprintf("%q: %d", "numcpu", runtime.NumCPU()),
	}
	if workers > 0 {
		parts = append(parts, fmt.Sprintf("%q: %d", "shard_workers", workers))
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// cpuModel reads the CPU model from /proc/cpuinfo; on hosts without
// it (darwin, containers with masked proc) the field degrades to
// "unknown" rather than failing the run.
func cpuModel() string {
	b, err := os.ReadFile("/proc/cpuinfo")
	if err == nil {
		for _, line := range strings.Split(string(b), "\n") {
			if name, val, ok := strings.Cut(line, ":"); ok && strings.TrimSpace(name) == "model name" {
				return strings.TrimSpace(val)
			}
		}
	}
	return "unknown"
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	workers := flag.Int("workers", 0, "sharded-campaign worker count to record in the _host entry (0 omits it)")
	flag.Parse()

	// A bench line reaches the -json stream as several Output events
	// (the runner prints the name first and the measurements once the
	// benchmark finishes), so reassemble the raw output stream before
	// splitting it into lines.
	var raw strings.Builder
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "{") {
			var ev testEvent
			if err := json.Unmarshal([]byte(line), &ev); err != nil {
				continue // interleaved non-event output
			}
			if ev.Action == "output" {
				raw.WriteString(ev.Output)
			}
			continue
		}
		raw.WriteString(line)
		raw.WriteString("\n")
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}
	results := make(map[string]map[string]float64)
	for _, line := range strings.Split(raw.String(), "\n") {
		if name, metrics, ok := parseBenchLine(strings.TrimSpace(line)); ok {
			results[name] = metrics
		}
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin")
		os.Exit(1)
	}

	// encoding/json sorts map keys, but build an explicit ordered
	// document anyway so the committed file diffs stably.
	names := make([]string, 0, len(results))
	for n := range results {
		names = append(names, n)
	}
	sort.Strings(names)
	var buf strings.Builder
	buf.WriteString("{\n")
	fmt.Fprintf(&buf, "  %q: %s,\n", "_host", hostJSON(*workers))
	for i, n := range names {
		keys := make([]string, 0, len(results[n]))
		for k := range results[n] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(&buf, "  %q: {", n)
		for j, k := range keys {
			if j > 0 {
				buf.WriteString(", ")
			}
			fmt.Fprintf(&buf, "%q: %s", k, strconv.FormatFloat(results[n][k], 'g', -1, 64))
		}
		buf.WriteString("}")
		if i+1 < len(names) {
			buf.WriteString(",")
		}
		buf.WriteString("\n")
	}
	buf.WriteString("}\n")

	if *out == "" {
		fmt.Print(buf.String())
		return
	}
	if err := os.WriteFile(*out, []byte(buf.String()), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
