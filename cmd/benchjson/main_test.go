package main

import (
	"encoding/json"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	cases := []struct {
		line string
		name string
		want map[string]float64
		ok   bool
	}{
		{
			// Plain timing line.
			line: "BenchmarkFig1Reachability-8    5    12419054 ns/op    1.190 %final-reachability",
			name: "BenchmarkFig1Reachability",
			want: map[string]float64{"iterations": 5, "ns/op": 12419054, "%final-reachability": 1.190},
			ok:   true,
		},
		{
			// -benchmem / b.ReportAllocs columns: B/op and allocs/op
			// must land in the trajectory point alongside shape metrics.
			line: "BenchmarkPaperScale-16  1  11535915971 ns/op  327.7 bytes/site  2047043296 B/op  214039 allocs/op",
			name: "BenchmarkPaperScale",
			want: map[string]float64{
				"iterations": 1, "ns/op": 11535915971,
				"bytes/site": 327.7, "B/op": 2047043296, "allocs/op": 214039,
			},
			ok: true,
		},
		{
			// Sub-benchmark names keep their slash.
			line: "BenchmarkMonitorScaling/6vp-parallel-4  1  1000 ns/op  42 sample-rows",
			name: "BenchmarkMonitorScaling/6vp-parallel",
			want: map[string]float64{"iterations": 1, "ns/op": 1000, "sample-rows": 42},
			ok:   true,
		},
		{line: "PASS", ok: false},
		{line: "ok  \tv6web\t4.1s", ok: false},
		{line: "BenchmarkBroken-8 not-a-number ns/op", ok: false},
	}
	for _, c := range cases {
		name, metrics, ok := parseBenchLine(c.line)
		if ok != c.ok {
			t.Errorf("parseBenchLine(%q) ok = %v, want %v", c.line, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if name != c.name {
			t.Errorf("parseBenchLine(%q) name = %q, want %q", c.line, name, c.name)
		}
		if len(metrics) != len(c.want) {
			t.Errorf("parseBenchLine(%q) metrics = %v, want %v", c.line, metrics, c.want)
			continue
		}
		for k, v := range c.want {
			if metrics[k] != v {
				t.Errorf("parseBenchLine(%q) %s = %v, want %v", c.line, k, metrics[k], v)
			}
		}
	}
}

// TestHostJSON validates the `_host` metadata entry: well-formed JSON
// with the machine fields present, and the shard worker count only
// when one was given.
func TestHostJSON(t *testing.T) {
	for _, workers := range []int{0, 4} {
		var host map[string]any
		if err := json.Unmarshal([]byte(hostJSON(workers)), &host); err != nil {
			t.Fatalf("hostJSON(%d) is not valid JSON: %v", workers, err)
		}
		model, ok := host["cpu_model"].(string)
		if !ok || model == "" {
			t.Errorf("hostJSON(%d): cpu_model missing or empty: %v", workers, host)
		}
		for _, k := range []string{"gomaxprocs", "numcpu"} {
			if v, ok := host[k].(float64); !ok || v < 1 {
				t.Errorf("hostJSON(%d): %s missing or < 1: %v", workers, k, host)
			}
		}
		if _, has := host["shard_workers"]; has != (workers > 0) {
			t.Errorf("hostJSON(%d): shard_workers present=%v", workers, has)
		}
		if workers > 0 && host["shard_workers"].(float64) != float64(workers) {
			t.Errorf("hostJSON(%d): shard_workers = %v", workers, host["shard_workers"])
		}
	}
}
