// Command v6report regenerates every table and figure of the paper's
// evaluation. With -db it analyzes a database previously saved by
// v6mon; without it, it runs a fresh deterministic scenario end to
// end and reports on that.
//
// Usage:
//
//	v6report                     # fresh scenario, full report
//	v6report -db v6web-data      # report over saved measurements
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"v6web/internal/analysis"
	"v6web/internal/core"
	"v6web/internal/report"
	"v6web/internal/store"
)

func main() {
	var (
		dbDir = flag.String("db", "", "directory previously written by v6mon (empty: run a fresh scenario)")
		seed  = flag.Int64("seed", 42, "scenario seed when running fresh")
		ases  = flag.Int("ases", 1500, "topology size when running fresh")
		sites = flag.Int("sites", 20000, "list size when running fresh")
	)
	flag.Parse()

	if *dbDir == "" {
		cfg := core.DefaultConfig(*seed)
		cfg.NASes = *ases
		cfg.ListSize = *sites
		s, err := core.NewScenario(cfg)
		if err != nil {
			fatal(err)
		}
		if err := s.ReportAll(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	main1, err := store.Load(filepath.Join(*dbDir, "main"))
	if err != nil {
		fatal(err)
	}
	th := analysis.DefaultThresholds()
	var vas []*analysis.VantageAnalysis
	for _, v := range main1.Vantages() {
		vas = append(vas, analysis.Analyze(main1, v, th))
	}
	study := analysis.NewStudy(vas...)
	rows2, all2 := study.Table2()
	report.Table2(os.Stdout, rows2, all2)
	report.Table3(os.Stdout, study.Table3())
	report.Table4(os.Stdout, study.Table4())
	report.Table5(os.Stdout, study.Table5())
	report.Table6(os.Stdout, study.Table6())
	report.HopTable(os.Stdout, "Table 7: DL+DP sites — performance (kbytes/sec) by hop count", study.Table7())
	report.Table8(os.Stdout, study.Table8())
	report.HopTable(os.Stdout, "Table 9: destination ASes in SP — performance (kbytes/sec) by hop count", study.Table9())
	report.Table11(os.Stdout, study.Table11())
	report.Table13(os.Stdout, study.Table13())

	if v6dayDB, err := store.Load(filepath.Join(*dbDir, "v6day")); err == nil {
		th6 := analysis.DefaultThresholds()
		th6.CI.MinN = 6
		var v6vas []*analysis.VantageAnalysis
		for _, v := range v6dayDB.Vantages() {
			v6vas = append(v6vas, analysis.Analyze(v6dayDB, v, th6))
		}
		v6day := analysis.NewStudy(v6vas...)
		report.Table10(os.Stdout, v6day.Table8())
		report.Table12(os.Stdout, v6day.Table11())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "v6report:", err)
	os.Exit(1)
}
