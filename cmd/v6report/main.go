// Command v6report regenerates every table and figure of the paper's
// evaluation. With -db it analyzes the databases previously saved by
// v6mon (including a campaign finished via checkpoints and -resume);
// without it, it runs a fresh deterministic campaign end to end and
// reports on that. Both paths render the measurement tables through
// the same report.RenderStudy pipeline, so saved and fresh campaigns
// always produce the same exhibits.
//
// With -scenario, the fresh campaign comes from a declarative
// scenario pack (built-in name or pack file; -set applies dotted-path
// overrides), and the pack's report.exhibits selection — when it has
// one — picks which exhibits are rendered.
//
// Usage:
//
//	v6report                     # fresh campaign, full report
//	v6report -db v6web-data      # report over saved measurements
//	v6report -scenario world-ipv6-day -set topo.ases=500
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"v6web/internal/analysis"
	"v6web/internal/cli"
	"v6web/internal/core"
	"v6web/internal/report"
	"v6web/internal/scenario"
	"v6web/internal/store"
)

func main() {
	var (
		dbDir = flag.String("db", "", "directory previously written by v6mon (empty: run a fresh scenario)")
		seed  = flag.Int64("seed", 42, "scenario seed when running fresh")
		ases  = flag.Int("ases", 1500, "topology size when running fresh")
		sites = flag.Int("sites", 20000, "list size when running fresh")
		pack  = flag.String("scenario", "", "scenario pack for the fresh campaign: built-in name, pack file, or \"list\" (replaces -seed/-ases/-sites; combining them is an error)")
	)
	var sets scenario.Overrides
	flag.Var(&sets, "set", "spec override as a dotted path, e.g. -set list.size=5000 (repeatable; needs -scenario)")
	flag.Parse()

	if *pack == "list" {
		if err := scenario.Describe(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	if *pack != "" && *dbDir != "" {
		fatal(errors.New("-scenario runs a fresh campaign; it cannot be combined with -db"))
	}
	if *pack == "" && len(sets) > 0 {
		fatal(errors.New("-set overrides a scenario spec; it needs -scenario"))
	}
	if *pack != "" {
		if bad := cli.ExplicitFlags("seed", "ases", "sites"); len(bad) > 0 {
			fatal(fmt.Errorf("-%s applies only without -scenario; use -set spec overrides instead (e.g. -set topo.ases=500)", strings.Join(bad, ", -")))
		}
	}

	if *pack != "" {
		comp, err := scenario.LoadCompiled(*pack, sets)
		if err != nil {
			fatal(err)
		}
		s, err := core.NewScenario(comp.Config)
		if err != nil {
			fatal(err)
		}
		if err := scenario.Render(os.Stdout, s, comp.Exhibits); err != nil {
			fatal(err)
		}
		return
	}

	if *dbDir == "" {
		cfg := core.DefaultConfig(*seed)
		cfg.NASes = *ases
		cfg.ListSize = *sites
		s, err := core.NewScenario(cfg)
		if err != nil {
			fatal(err)
		}
		if err := s.ReportAll(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	main1, err := store.Load(filepath.Join(*dbDir, store.SnapMain))
	if err != nil {
		fatal(err)
	}
	study := report.StudyOfSnapshot(main1.Freeze(), analysis.DefaultThresholds())

	// The World IPv6 Day database is optional (older saves may predate
	// it), but a partially written one is a real error — surface it
	// instead of silently dropping Tables 10 and 12.
	var v6day *analysis.Study
	switch v6dayDB, err := store.Load(filepath.Join(*dbDir, store.SnapV6Day)); {
	case err == nil:
		v6day = report.StudyOfSnapshot(v6dayDB.Freeze(), report.V6DayThresholds())
	case errors.Is(err, store.ErrNoDatabase):
		fmt.Fprintln(os.Stderr, "v6report: no World IPv6 Day database; skipping Tables 10 and 12")
	default:
		fatal(err)
	}

	report.RenderStudy(os.Stdout, study, v6day)
}

func fatal(err error) { cli.Fatal("v6report", err) }
