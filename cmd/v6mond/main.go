// Command v6mond runs measurement campaigns as a supervised daemon:
// scenario-pack campaigns execute under checkpointing with
// auto-resume, and every completed round is published as a versioned
// snapshot served over HTTP while the next round computes.
//
// Campaigns are registered with the repeatable -campaign flag
// (name=pack, optionally followed by ;key=value spec overrides) and
// persisted as manifests under <data>/campaigns/<name>/. A restarted
// daemon — including one killed with SIGKILL mid-round or
// mid-checkpoint-commit — rediscovers every campaign from disk and
// resumes it from the last committed checkpoint with no operator
// action; the exhibits it serves after resuming are byte-identical to
// an uninterrupted run's.
//
// Usage:
//
//	v6mond -data d/ -campaign 'paper=paper-scale-mini'
//	v6mond -data d/ -campaign 'small=paper-scale-mini;topo.ases=200' \
//	       -campaign 'outages=vantage-outages' -round-every 10s
//	v6mond -data d/                       # resume discovered campaigns only
//
// The HTTP API (default :9646):
//
//	/healthz                              liveness
//	/readyz                               200 once every campaign serves a
//	                                      version backed by a committed checkpoint
//	/api/campaigns                        status of every campaign
//	/api/campaigns/<name>                 one campaign's status
//	/api/campaigns/<name>/report          full measurement report (tables 2–13),
//	                                      byte-identical to `v6report -db`
//	/api/campaigns/<name>/exhibits        exhibit index (servable + pre-rendered)
//	/api/campaigns/<name>/exhibits/<x>    one exhibit (fig1, fig3a, fig3b,
//	                                      table1..table13)
//	/api/campaigns/<name>/events          round events as SSE
//
// The pack's "exhibits" selection (plus the full report) is
// pre-rendered at every round boundary and served without touching the
// render limiter; other exhibits render cold under -render-concurrency
// and are shed with 429 when the limiter is full.
//
// On SIGINT/SIGTERM the daemon drains: in-flight requests finish, live
// campaigns checkpoint, and the process exits 0 — restarting resumes
// where it left off.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"v6web/internal/cli"
	"v6web/internal/daemon"
	"v6web/internal/scenario"
	"v6web/internal/store"
)

// campaignFlag is the repeatable -campaign value: "name=pack" with
// optional ";key=value" spec overrides appended.
type campaignFlag struct {
	name string
	pack string
	sets scenario.Overrides
}

type campaignFlags []campaignFlag

func (c *campaignFlags) String() string {
	var parts []string
	for _, f := range *c {
		parts = append(parts, f.name+"="+f.pack)
	}
	return strings.Join(parts, ",")
}

func (c *campaignFlags) Set(v string) error {
	name, rest, ok := strings.Cut(v, "=")
	if !ok || name == "" || rest == "" {
		return fmt.Errorf("want name=pack[;key=value;...], got %q", v)
	}
	fields := strings.Split(rest, ";")
	f := campaignFlag{name: name, pack: fields[0]}
	for _, set := range fields[1:] {
		if err := f.sets.Set(set); err != nil {
			return err
		}
	}
	*c = append(*c, f)
	return nil
}

func main() {
	var (
		data    = flag.String("data", "v6mond-data", "daemon data directory (campaign manifests, checkpoints, final CSVs)")
		addr    = flag.String("addr", ":9646", "HTTP listen address")
		every   = flag.Int("checkpoint-every", 1, "checkpoint cadence in rounds (minimum 1: a supervised campaign is always resumable)")
		pace    = flag.Duration("round-every", 0, "pause between campaign rounds (the paper's weekly cadence, scaled; 0 runs rounds back-to-back)")
		watch   = flag.Duration("watchdog", 0, "stuck-round deadline base: a round with no progress for this long (plus restart backoff) is abandoned and resumed from the last checkpoint (0 uses the default retry policy's timeout)")
		renders = flag.Int("render-concurrency", 4, "max concurrent cold exhibit renders; beyond it requests are shed with 429")
		format  = flag.String("format", "binary", "checkpoint snapshot format for newly added campaigns: binary or csv")
		quiet   = flag.Bool("q", false, "suppress progress output")
	)
	var campaigns campaignFlags
	flag.Var(&campaigns, "campaign", "campaign as name=pack[;key=value;...] (repeatable); pack is a built-in scenario name or a pack file, overrides are dotted spec paths")
	flag.Parse()

	ckptFormat, err := store.ParseSnapshotFormat(*format)
	if err != nil {
		fatal(err)
	}

	opt := daemon.Options{
		Dir:               *data,
		Addr:              *addr,
		CheckpointEvery:   *every,
		RoundEvery:        *pace,
		RenderConcurrency: *renders,
		Format:            ckptFormat,
	}
	if *watch > 0 {
		opt.Retry.Timeout = *watch
	}
	if !*quiet {
		opt.Log = os.Stdout
	}
	d := daemon.New(opt)

	// Disk first (a restart must pick up every existing campaign even
	// when started with no flags), then the command line, which is
	// idempotent for campaigns already on disk.
	if err := d.Discover(); err != nil {
		fatal(err)
	}
	for _, f := range campaigns {
		if _, err := d.Add(f.name, f.pack, f.sets); err != nil {
			fatal(err)
		}
	}
	if len(d.Campaigns()) == 0 {
		fatal(fmt.Errorf("no campaigns: give at least one -campaign name=pack, or point -data at a directory with existing campaigns"))
	}

	ctx, stop := cli.SignalContext()
	defer stop()
	start := time.Now()
	if err := d.Run(ctx); err != nil {
		fatal(err)
	}
	cli.Drained("v6mond", fmt.Sprintf("drained after %v; campaigns checkpointed — restart to resume",
		time.Since(start).Round(time.Second)), true)
}

func fatal(err error) { cli.Fatal("v6mond", err) }
