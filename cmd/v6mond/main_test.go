package main

// Crash-recovery property test for the daemon: SIGKILL v6mond at
// random points in a live campaign — including at round boundaries,
// where the kill lands next to a checkpoint commit — restart it with
// no flags (discovery alone), and the resumed campaign must produce
// final CSVs and served exhibit bytes byte-identical to a run that was
// never interrupted. Both checkpoint snapshot formats are exercised.

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

func buildV6Mond(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "v6mond")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

const killTestCampaign = "tiny=baseline-2011;topo.ases=100;list.size=500;schedule.rounds=5"

// logCapture tees the daemon's stdout so the test can extract the
// bound address (the daemon listens on port 0) and watch progress.
type logCapture struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (l *logCapture) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.buf.Write(p)
}

func (l *logCapture) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.buf.String()
}

var listenRe = regexp.MustCompile(`listening on (\S+)`)

// startDaemon launches the binary and waits for its listen address.
func startDaemon(t *testing.T, bin, data string, extra ...string) (*exec.Cmd, *logCapture, string) {
	t.Helper()
	args := append([]string{"-data", data, "-addr", "127.0.0.1:0"}, extra...)
	cmd := exec.Command(bin, args...)
	logs := &logCapture{}
	cmd.Stdout = logs
	cmd.Stderr = logs
	if err := cmd.Start(); err != nil {
		t.Fatalf("start v6mond: %v", err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if m := listenRe.FindStringSubmatch(logs.String()); m != nil {
			return cmd, logs, "http://" + m[1]
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatalf("daemon never announced its listener:\n%s", logs.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func getBody(base, path string) (int, []byte, error) {
	resp, err := http.Get(base + path)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp.StatusCode, body, err
}

// waitComplete polls until the campaign reports complete.
func waitComplete(t *testing.T, base string, logs *logCapture) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		_, body, err := getBody(base, "/api/campaigns/tiny")
		if err == nil && strings.Contains(string(body), `"state": "complete"`) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign never completed; last status %s\nlogs:\n%s", body, logs.String())
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// campaignRound reads the campaign's completed-round counter (-1 when
// the daemon is unreachable mid-restart).
func campaignRound(base string) int {
	_, body, err := getBody(base, "/api/campaigns/tiny")
	if err != nil {
		return -1
	}
	m := regexp.MustCompile(`"round": (\d+)`).FindSubmatch(body)
	if m == nil {
		return -1
	}
	var n int
	fmt.Sscanf(string(m[1]), "%d", &n)
	return n
}

// servedArtifacts snapshots everything the equivalence check compares:
// the full report, a figure, a table, and the final CSVs.
func servedArtifacts(t *testing.T, base, data string) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	for _, path := range []string{
		"/api/campaigns/tiny/report",
		"/api/campaigns/tiny/exhibits/fig1",
		"/api/campaigns/tiny/exhibits/fig3b",
		"/api/campaigns/tiny/exhibits/table2",
		"/api/campaigns/tiny/exhibits/table13",
	} {
		code, body, err := getBody(base, path)
		if err != nil || code != http.StatusOK {
			t.Fatalf("GET %s: %d %v", path, code, err)
		}
		out[path] = body
	}
	for _, rel := range []string{"main/sites.csv", "main/samples.csv", "v6day/sites.csv", "v6day/samples.csv"} {
		b, err := os.ReadFile(filepath.Join(data, "campaigns", "tiny", rel))
		if err != nil {
			t.Fatalf("read %s: %v", rel, err)
		}
		out[rel] = b
	}
	return out
}

func drain(t *testing.T, cmd *exec.Cmd, logs *logCapture) {
	t.Helper()
	cmd.Process.Signal(syscall.SIGTERM)
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon drain: %v\n%s", err, logs.String())
	}
}

func TestKillAnywhereResumesByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns daemon processes")
	}
	bin := buildV6Mond(t)
	root := t.TempDir()

	// Reference: the same campaign, never interrupted, no pacing.
	refData := filepath.Join(root, "ref")
	cmd, logs, base := startDaemon(t, bin, refData, "-campaign", killTestCampaign)
	waitComplete(t, base, logs)
	want := servedArtifacts(t, base, refData)
	drain(t, cmd, logs)

	seed := time.Now().UnixNano()
	rng := rand.New(rand.NewSource(seed))
	t.Logf("kill-timing seed %d", seed)

	for _, format := range []string{"binary", "csv"} {
		for trial := 0; trial < 2; trial++ {
			name := fmt.Sprintf("%s/trial%d", format, trial)
			data := filepath.Join(root, fmt.Sprintf("kill-%s-%d", format, trial))

			// Paced run so the kill lands inside a live campaign. Trial 0
			// kills at a random instant; trial 1 kills the moment a round
			// boundary is observed — right where checkpoint commit and
			// version publish happen.
			cmd, logs, base := startDaemon(t, bin, data,
				"-campaign", killTestCampaign, "-format", format, "-round-every", "250ms")
			if trial == 0 {
				time.Sleep(time.Duration(rng.Int63n(int64(1200 * time.Millisecond))))
			} else {
				start := campaignRound(base)
				deadline := time.Now().Add(30 * time.Second)
				for campaignRound(base) <= start && time.Now().Before(deadline) {
					time.Sleep(2 * time.Millisecond)
				}
			}
			cmd.Process.Kill() // SIGKILL: no drain, no shutdown checkpoint
			cmd.Wait()

			// Restart with no campaign flags: discovery must find and
			// resume (or finish) the campaign unaided.
			cmd, logs, base = startDaemon(t, bin, data)
			waitComplete(t, base, logs)
			got := servedArtifacts(t, base, data)
			for key, wantBytes := range want {
				if !bytes.Equal(got[key], wantBytes) {
					t.Errorf("%s: %s differs from uninterrupted run (%d vs %d bytes)",
						name, key, len(got[key]), len(wantBytes))
				}
			}
			drain(t, cmd, logs)
		}
	}
}

// TestDrainExitsZeroAndResumes: SIGTERM mid-campaign checkpoints, exits
// 0, and a restart resumes to the same bytes.
func TestDrainExitsZeroAndResumes(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns daemon processes")
	}
	bin := buildV6Mond(t)
	root := t.TempDir()

	refData := filepath.Join(root, "ref")
	cmd, logs, base := startDaemon(t, bin, refData, "-campaign", killTestCampaign)
	waitComplete(t, base, logs)
	want := servedArtifacts(t, base, refData)
	drain(t, cmd, logs)

	data := filepath.Join(root, "drain")
	cmd, logs, base = startDaemon(t, bin, data, "-campaign", killTestCampaign, "-round-every", "300ms")
	start := campaignRound(base)
	deadline := time.Now().Add(30 * time.Second)
	for campaignRound(base) <= start && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	cmd.Process.Signal(syscall.SIGTERM)
	if err := cmd.Wait(); err != nil {
		t.Fatalf("SIGTERM mid-campaign must drain to exit 0: %v\n%s", err, logs.String())
	}
	if !strings.Contains(logs.String(), "campaigns checkpointed") {
		t.Errorf("drain notice missing:\n%s", logs.String())
	}

	cmd, logs, base = startDaemon(t, bin, data)
	waitComplete(t, base, logs)
	got := servedArtifacts(t, base, data)
	for key, wantBytes := range want {
		if !bytes.Equal(got[key], wantBytes) {
			t.Errorf("after drain+resume, %s differs (%d vs %d bytes)", key, len(got[key]), len(wantBytes))
		}
	}
	drain(t, cmd, logs)
}
