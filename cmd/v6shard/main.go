// Command v6shard runs the sharded campaign machinery directly, for
// layouts v6mon's -shards shortcut cannot express: a coordinator
// accepting workers over TCP, or standalone workers started by hand
// (or by a cluster scheduler) on other machines.
//
// `v6shard coordinate` splits the campaign into site-range shards and
// merges worker results into CSVs byte-identical to a single-process
// run. By default it spawns local worker processes; with -listen it
// instead waits for `v6shard worker -connect` processes to dial in,
// one shard per connection.
//
// Usage:
//
//	v6shard coordinate -out data/ -shards 4 [-seed 42] [-ases 1500]
//	        [-sites 20000] [-rounds 35] [-scenario pack [-set k=v]]
//	        [-format binary|csv] [-faults plan] [-frame-timeout 5m] [-q]
//	v6shard coordinate -out data/ -shards 8 -listen :9653
//	v6shard worker -connect host:9653 [-dial-attempts 20]   # repeat per machine/core
//
// On SIGINT/SIGTERM the coordinator interrupts every live worker, each
// checkpoints its shard, and (when checkpointing is on) the command
// exits 0: rerunning the same command resumes from the checkpoints.
// -faults arms the deterministic chaos layer (internal/fault) for
// recovery drills; a recoverable plan never changes the output bytes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"v6web/internal/cli"
	"v6web/internal/core"
	"v6web/internal/fault"
	"v6web/internal/scenario"
	"v6web/internal/shard"
	"v6web/internal/store"
)

func main() {
	shard.MaybeWorker()
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "worker":
		workerMain(os.Args[2:])
	case "coordinate":
		coordinateMain(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: v6shard coordinate|worker [flags]  (see go doc ./cmd/v6shard)")
	os.Exit(2)
}

func workerMain(args []string) {
	fs := flag.NewFlagSet("v6shard worker", flag.ExitOnError)
	connect := fs.String("connect", "", "coordinator address to dial; without it, one spec is served on stdin/stdout")
	dialAttempts := fs.Int("dial-attempts", 0, "bounded dial retries for the first connection, so a worker started before its coordinator listens still joins (0 uses the default policy)")
	fs.Parse(args)
	var err error
	if *connect != "" {
		p := fault.DefaultRetryPolicy()
		if *dialAttempts > 0 {
			p.MaxAttempts = *dialAttempts
		}
		err = shard.ServeAddrRetry(*connect, p)
	} else {
		err = shard.Serve(os.Stdin, os.Stdout)
	}
	if err != nil {
		fatal(err)
	}
}

func coordinateMain(args []string) {
	fs := flag.NewFlagSet("v6shard coordinate", flag.ExitOnError)
	var (
		out    = fs.String("out", "v6web-data", "output directory for the measurement CSVs")
		seed   = fs.Int64("seed", 42, "deterministic scenario seed")
		ases   = fs.Int("ases", 1500, "number of ASes in the synthetic topology")
		sites  = fs.Int("sites", 20000, "ranked-list size (stand-in for the top 1M)")
		rounds = fs.Int("rounds", 35, "weekly monitoring rounds")
		pack   = fs.String("scenario", "", "scenario pack: a built-in name or a pack file (replaces the shape flags)")
		shards = fs.Int("shards", 4, "number of site-range shards / workers")
		listen = fs.String("listen", "", "accept remote `v6shard worker -connect` processes on this address instead of spawning local workers")
		every  = fs.Int("checkpoint-every", 2, "worker checkpoint cadence in rounds (0 disables; a failed worker then retries from scratch)")
		format = fs.String("format", "binary", "worker checkpoint snapshot format: binary or csv (the final measurement CSVs are unaffected)")
		quiet  = fs.Bool("q", false, "suppress progress output")
		faults = fs.String("faults", "", "deterministic chaos plan, e.g. seed=7,fs=0.1,wire.cut=0.3 (see go doc v6web/internal/fault ParseFlag)")
		ftime  = fs.Duration("frame-timeout", 0, "max silence on a worker stream before the shard attempt is abandoned and retried (0 uses the default watchdog)")
	)
	var sets scenario.Overrides
	fs.Var(&sets, "set", "spec override as a dotted path (repeatable; needs -scenario)")
	fs.Parse(args)

	var cfg core.Config
	if *pack == "" {
		if len(sets) > 0 {
			fatal(fmt.Errorf("-set overrides a scenario spec; it needs -scenario"))
		}
		cfg = core.DefaultConfig(*seed)
		cfg.NASes = *ases
		cfg.ListSize = *sites
		cfg.Rounds = *rounds
		cfg.Vantages = core.ScaledVantages(*rounds)
	} else {
		comp, err := scenario.LoadCompiled(*pack, sets)
		if err != nil {
			fatal(err)
		}
		if !*quiet && comp.Name != "" {
			fmt.Printf("scenario: %s — %s\n", comp.Name, comp.Doc)
		}
		cfg = comp.Config
	}

	ckptFormat, err := store.ParseSnapshotFormat(*format)
	if err != nil {
		fatal(err)
	}

	ctx, stop := cli.SignalContext()
	defer stop()

	opt := shard.Options{
		Workers:          *shards,
		CheckpointEvery:  *every,
		CheckpointFormat: ckptFormat,
		Listen:           *listen,
	}
	if *faults != "" {
		fc, err := fault.ParseFlag(*faults)
		if err != nil {
			fatal(err)
		}
		opt.Faults = fc
	}
	if *ftime > 0 {
		opt.Retry.Timeout = *ftime
	}
	if *every > 0 {
		opt.Dir = filepath.Join(*out, "shards")
	}
	if !*quiet {
		opt.Log = os.Stdout
	}
	start := time.Now()
	s, st, err := shard.Run(ctx, cfg, opt)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			// Graceful shutdown: every live worker was interrupted and
			// checkpointed before Run returned, so (with checkpointing
			// on) the campaign state on disk is whole and resumable.
			if opt.Dir != "" {
				cli.Drained("v6shard", "interrupted; shard checkpoints saved — rerun the same command to continue", true)
			}
			cli.Drained("v6shard", "interrupted; -checkpoint-every was 0, so progress is lost", false)
		}
		fatal(err)
	}
	if !*quiet {
		fmt.Printf("%d shards merged: %s on the wire, %v merging, %d retries, %v total\n",
			st.Shards, byteCount(st.WireBytes), st.MergeDur.Round(time.Millisecond),
			st.Retries, time.Since(start).Round(time.Millisecond))
	}
	if err := s.RunWorldV6DayContext(ctx); err != nil {
		fatal(err)
	}
	if err := cli.SaveCompleted(*out, cfg.Rounds, cfg.Fingerprint(), s.DB, s.V6DayDB); err != nil {
		fatal(err)
	}
	if opt.Dir != "" {
		os.RemoveAll(opt.Dir)
	}
	if !*quiet {
		fmt.Printf("saved to %s\n", *out)
	}
}

func byteCount(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}

func fatal(err error) { cli.Fatal("v6shard", err) }
