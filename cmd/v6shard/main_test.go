package main

// End-to-end test of the coordinator's graceful-shutdown contract:
// SIGTERM mid-campaign makes every live worker checkpoint its shard,
// the command exits 0, and rerunning the same command resumes from
// the checkpoints and produces CSVs byte-identical to a run that was
// never interrupted.

import (
	"bytes"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

func buildV6Shard(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "v6shard")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func coordinateArgs(out string) []string {
	return []string{"coordinate", "-out", out,
		"-seed", "5", "-ases", "250", "-sites", "1200", "-rounds", "6",
		"-shards", "2", "-checkpoint-every", "1"}
}

// lineWatcher tees the child's stdout and closes seen once the wanted
// substring appears, so the test can signal mid-campaign rather than
// after a blind sleep.
type lineWatcher struct {
	needle string
	seen   chan struct{}
	once   sync.Once
	mu     sync.Mutex
	buf    bytes.Buffer
}

func (w *lineWatcher) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	n, _ := w.buf.Write(p)
	if strings.Contains(w.buf.String(), w.needle) {
		w.once.Do(func() { close(w.seen) })
	}
	return n, nil
}

func (w *lineWatcher) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

func TestCoordinateSigtermCheckpointsAndExitsZero(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns coordinator+worker processes")
	}
	bin := buildV6Shard(t)
	root := t.TempDir()
	refOut := filepath.Join(root, "ref")
	out := filepath.Join(root, "run")

	// Reference: the same campaign, never interrupted.
	if o, err := exec.Command(bin, coordinateArgs(refOut)...).CombinedOutput(); err != nil {
		t.Fatalf("reference run: %v\n%s", err, o)
	}

	watch := &lineWatcher{needle: "round 2 done", seen: make(chan struct{})}
	var stderr bytes.Buffer
	cmd := exec.Command(bin, coordinateArgs(out)...)
	cmd.Stdout = watch
	cmd.Stderr = io.MultiWriter(watch, &stderr)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-watch.seen:
	case <-time.After(2 * time.Minute):
		cmd.Process.Kill()
		t.Fatalf("campaign never reached round 2:\n%s", watch.String())
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	if err != nil {
		t.Fatalf("SIGTERM drain must exit 0, got %v\nstderr: %s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "shard checkpoints saved") {
		t.Errorf("no graceful-shutdown notice on stderr: %q", stderr.String())
	}
	if ents, err := os.ReadDir(filepath.Join(out, "shards")); err != nil || len(ents) == 0 {
		t.Fatalf("no shard checkpoints on disk after drain (err=%v)", err)
	}

	// Same command again: workers resume from their checkpoints and
	// the merged campaign must match the uninterrupted reference.
	if o, err := exec.Command(bin, coordinateArgs(out)...).CombinedOutput(); err != nil {
		t.Fatalf("resumed run: %v\n%s", err, o)
	}
	for _, name := range []string{
		"main/sites.csv", "main/dns.csv", "main/samples.csv", "main/paths.csv",
		"v6day/sites.csv", "v6day/dns.csv", "v6day/samples.csv", "v6day/paths.csv",
	} {
		want, err := os.ReadFile(filepath.Join(refOut, name))
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(out, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Errorf("%s differs after interrupt+resume (%d vs %d bytes)", name, len(got), len(want))
		}
	}
}
