// Command v6sweep re-runs the full study across a parameter sweep and
// tabulates how the paper's findings move — the what-if companion to
// v6report. Sweep points are independent campaigns and run
// concurrently on a bounded worker pool (-parallel); Ctrl-C stops the
// in-flight campaigns at their next round boundary. Built-in sweeps
// target the design dimensions DESIGN.md calls out: IPv6 peering
// parity, tunnel prevalence, and the deficient-server mix.
//
// Usage:
//
//	v6sweep -sweep parity   # peering parity 0.4 .. 1.0
//	v6sweep -sweep tunnels  # tunnel prevalence 0 .. 0.6
//	v6sweep -sweep servers  # deficient-server AS mix 0 .. 0.5
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"v6web/internal/core"
	"v6web/internal/sweep"
	"v6web/internal/topo"
	"v6web/internal/websim"
)

func main() {
	var (
		which    = flag.String("sweep", "parity", "which sweep: parity, tunnels, servers")
		seed     = flag.Int64("seed", 42, "scenario seed")
		ases     = flag.Int("ases", 900, "topology size")
		sites    = flag.Int("sites", 9000, "list size")
		parallel = flag.Int("parallel", 0, "concurrent sweep points (0: one per CPU)")
	)
	flag.Parse()

	base := core.DefaultConfig(*seed)
	base.NASes = *ases
	base.ListSize = *sites
	base.Extended = 0
	base.Rounds = 28
	base.Vantages = core.ScaledVantages(base.Rounds)

	metrics := map[string]sweep.Metric{
		"SP-share":    asPct(sweep.SPShare),
		"H1-comp%":    asPct(sweep.H1Comparable),
		"H2-comp%":    asPct(sweep.H2Comparable),
		"DL-v4-wins%": asPct(sweep.DLV4Advantage),
		"DP-deficit%": asPct(sweep.V6DeficitDP),
	}

	var points []sweep.Point
	var title string
	switch *which {
	case "parity":
		title = "Sweep: IPv6 peering parity (the paper's recommended remedy)"
		for _, p := range []float64{0.4, 0.55, 0.7, 0.85, 1.0} {
			parity := p
			points = append(points, sweep.Point{
				Label: fmt.Sprintf("parity=%.2f", parity),
				Mutate: func(c *core.Config) {
					tc := topo.DefaultGenConfig(c.NASes, c.Seed)
					tc.V6EdgeParity = parity
					if parity == 1.0 {
						tc.TunnelFrac = 0
					}
					c.TopoOverride = &tc
				},
			})
		}
	case "tunnels":
		title = "Sweep: IPv6 tunnel prevalence (Table 7's low-hop artefact)"
		for _, f := range []float64{0, 0.15, 0.3, 0.45, 0.6} {
			frac := f
			points = append(points, sweep.Point{
				Label: fmt.Sprintf("tunnels=%.2f", frac),
				Mutate: func(c *core.Config) {
					tc := topo.DefaultGenConfig(c.NASes, c.Seed)
					tc.TunnelFrac = frac
					c.TopoOverride = &tc
				},
			})
		}
	case "servers":
		title = "Sweep: deficient IPv6 server mix (Table 8's zero-modes)"
		for _, f := range []float64{0, 0.1, 0.25, 0.5} {
			frac := f
			points = append(points, sweep.Point{
				Label: fmt.Sprintf("badmix=%.2f", frac),
				Mutate: func(c *core.Config) {
					wc := websim.DefaultConfig(c.Seed)
					wc.BadMixASFrac = frac
					if frac == 0 {
						wc.BadFracInGood = 0
					}
					c.Web = &wc
				},
			})
		}
	default:
		fmt.Fprintf(os.Stderr, "v6sweep: unknown sweep %q\n", *which)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	results, err := sweep.RunContext(ctx, base, points, metrics, *parallel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "v6sweep:", err)
		os.Exit(1)
	}
	sweep.Write(os.Stdout, title, results)
}

func asPct(m sweep.Metric) sweep.Metric {
	return func(s *core.Scenario) float64 { return 100 * m(s) }
}
