// Command v6sweep re-runs the full study across a parameter sweep and
// tabulates how the paper's findings move — the what-if companion to
// v6report. Sweep points are independent campaigns and run
// concurrently on a bounded worker pool (-parallel); Ctrl-C stops the
// in-flight campaigns at their next round boundary.
//
// Two kinds of sweep are available. The built-in sweeps (-sweep)
// target the design dimensions DESIGN.md calls out: IPv6 peering
// parity, tunnel prevalence, and the deficient-server mix. The
// generic sweep (-over) varies ANY scenario-spec field over a value
// list, with the base world coming from a scenario pack (-scenario, a
// built-in name or pack file) plus fixed -set overrides — so a new
// what-if dimension needs no code at all.
//
// Usage:
//
//	v6sweep -sweep parity   # peering parity 0.4 .. 1.0
//	v6sweep -sweep tunnels  # tunnel prevalence 0 .. 0.6
//	v6sweep -sweep servers  # deficient-server AS mix 0 .. 0.5
//	v6sweep -scenario baseline-2011 -set topo.ases=600 -set list.size=6000 \
//	        -over topo.v6_edge_parity=0.4,0.7,1.0
//	v6sweep -scenario broken-tunnels -over client.max_downloads=6,15,30
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"v6web/internal/cli"
	"v6web/internal/core"
	"v6web/internal/scenario"
	"v6web/internal/sweep"
	"v6web/internal/topo"
	"v6web/internal/websim"
)

func main() {
	var (
		which    = flag.String("sweep", "parity", "built-in sweep: parity, tunnels, servers (ignored when -over is given)")
		seed     = flag.Int64("seed", 42, "scenario seed (built-in sweeps)")
		ases     = flag.Int("ases", 900, "topology size (built-in sweeps)")
		sites    = flag.Int("sites", 9000, "list size (built-in sweeps)")
		pack     = flag.String("scenario", "", "base scenario pack for -over: built-in name, pack file, or \"list\" to print the catalog")
		over     = flag.String("over", "", "generic sweep: a spec field and its values, e.g. topo.v6_edge_parity=0.4,0.7,1.0")
		parallel = flag.Int("parallel", 0, "concurrent sweep points (0: one per CPU, capped at 4 — each point is a full campaign)")
	)
	var sets scenario.Overrides
	flag.Var(&sets, "set", "fixed spec override applied to every point, e.g. -set topo.ases=600 (repeatable; needs -scenario or -over)")
	flag.Parse()

	if *pack == "list" {
		if err := scenario.Describe(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	metrics := map[string]sweep.Metric{
		"SP-share":    asPct(sweep.SPShare),
		"H1-comp%":    asPct(sweep.H1Comparable),
		"H2-comp%":    asPct(sweep.H2Comparable),
		"DL-v4-wins%": asPct(sweep.DLV4Advantage),
		"DP-deficit%": asPct(sweep.V6DeficitDP),
	}

	var base core.Config
	var points []sweep.Point
	var title string
	var err error
	if *over != "" {
		if bad := cli.ExplicitFlags("sweep", "seed", "ases", "sites"); len(bad) > 0 {
			fatal(fmt.Errorf("-%s applies only to the built-in sweeps; with -over, shape the world via -scenario and -set", strings.Join(bad, ", -")))
		}
		base, points, title, err = specSweep(*pack, sets, *over)
		if err != nil {
			fatal(err)
		}
	} else {
		if len(sets) > 0 || *pack != "" {
			fatal(fmt.Errorf("-scenario/-set parameterize the generic sweep; they need -over"))
		}
		base = core.DefaultConfig(*seed)
		base.NASes = *ases
		base.ListSize = *sites
		base.Extended = 0
		base.Rounds = 28
		base.Vantages = core.ScaledVantages(base.Rounds)
		points, title, err = builtinSweep(*which)
		if err != nil {
			fatal(err)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	results, err := sweep.RunContext(ctx, base, points, metrics, *parallel)
	if err != nil {
		fatal(err)
	}
	sweep.Write(os.Stdout, title, results)
}

// specSweep builds one sweep point per value of a dotted-path spec
// field, over a base scenario pack with fixed overrides applied.
func specSweep(pack string, sets scenario.Overrides, over string) (core.Config, []sweep.Point, string, error) {
	path, list, ok := strings.Cut(over, "=")
	if !ok || path == "" || list == "" {
		return core.Config{}, nil, "", fmt.Errorf("-over wants path=v1,v2,... got %q", over)
	}
	if pack == "" {
		pack = "baseline-2011"
	}
	sp, err := scenario.LoadSpec(pack, sets)
	if err != nil {
		return core.Config{}, nil, "", err
	}
	base, err := sp.Compile()
	if err != nil {
		return core.Config{}, nil, "", err
	}
	var points []sweep.Point
	for _, raw := range strings.Split(list, ",") {
		value := strings.TrimSpace(raw)
		pt := sp.Clone()
		if err := pt.Set(path, value); err != nil {
			return core.Config{}, nil, "", err
		}
		comp, err := pt.Compile()
		if err != nil {
			return core.Config{}, nil, "", fmt.Errorf("%s=%s: %w", path, value, err)
		}
		cfg := comp.Config
		points = append(points, sweep.Point{
			Label:  fmt.Sprintf("%s=%s", path, value),
			Mutate: func(c *core.Config) { *c = cfg },
		})
	}
	title := fmt.Sprintf("Sweep: %s over scenario %q", path, pack)
	return base.Config, points, title, nil
}

// builtinSweep returns the hard-wired design-dimension sweeps.
func builtinSweep(which string) ([]sweep.Point, string, error) {
	var points []sweep.Point
	var title string
	switch which {
	case "parity":
		title = "Sweep: IPv6 peering parity (the paper's recommended remedy)"
		for _, p := range []float64{0.4, 0.55, 0.7, 0.85, 1.0} {
			parity := p
			points = append(points, sweep.Point{
				Label: fmt.Sprintf("parity=%.2f", parity),
				Mutate: func(c *core.Config) {
					tc := topo.DefaultGenConfig(c.NASes, c.Seed)
					tc.V6EdgeParity = parity
					if parity == 1.0 {
						tc.TunnelFrac = 0
					}
					c.TopoOverride = &tc
				},
			})
		}
	case "tunnels":
		title = "Sweep: IPv6 tunnel prevalence (Table 7's low-hop artefact)"
		for _, f := range []float64{0, 0.15, 0.3, 0.45, 0.6} {
			frac := f
			points = append(points, sweep.Point{
				Label: fmt.Sprintf("tunnels=%.2f", frac),
				Mutate: func(c *core.Config) {
					tc := topo.DefaultGenConfig(c.NASes, c.Seed)
					tc.TunnelFrac = frac
					c.TopoOverride = &tc
				},
			})
		}
	case "servers":
		title = "Sweep: deficient IPv6 server mix (Table 8's zero-modes)"
		for _, f := range []float64{0, 0.1, 0.25, 0.5} {
			frac := f
			points = append(points, sweep.Point{
				Label: fmt.Sprintf("badmix=%.2f", frac),
				Mutate: func(c *core.Config) {
					wc := websim.DefaultConfig(c.Seed)
					wc.BadMixASFrac = frac
					if frac == 0 {
						wc.BadFracInGood = 0
					}
					c.Web = &wc
				},
			})
		}
	default:
		return nil, "", fmt.Errorf("unknown sweep %q (want parity, tunnels, or servers; or use -over)", which)
	}
	return points, title, nil
}

func asPct(m sweep.Metric) sweep.Metric {
	return func(s *core.Scenario) float64 { return 100 * m(s) }
}

func fatal(err error) { cli.Fatal("v6sweep", err) }
