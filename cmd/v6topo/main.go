// Command v6topo generates a synthetic AS-level topology and prints
// its vital statistics: tier sizes, IPv6 capability, edge counts per
// family, tunnels, and a reachability check. It is the substrate
// inspector for the campaign tools — the same generator seed given
// here is what v6mon's campaign runner builds its RIBs from, so
// v6topo is the quick way to sanity-check a topology before
// committing it to a multi-round (and possibly checkpointed,
// resumable) monitoring campaign.
//
// With -scenario, the topology is the one a scenario pack's campaign
// would build (its TopoOverride, or the default generator at the
// pack's size and seed), so a pack's world can be inspected before
// running it.
//
// Usage:
//
//	v6topo [-ases 1500] [-seed 42] [-parity 0.7]
//	v6topo -scenario broken-tunnels [-set topo.ases=500]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"v6web/internal/bgp"
	"v6web/internal/cli"
	"v6web/internal/scenario"
	"v6web/internal/topo"
)

func main() {
	var (
		ases   = flag.Int("ases", 1500, "number of ASes")
		seed   = flag.Int64("seed", 42, "generation seed")
		parity = flag.Float64("parity", -1, "IPv6 peering parity override (0..1, negative keeps default)")
		pack   = flag.String("scenario", "", "inspect a scenario pack's topology: built-in name, pack file, or \"list\" (replaces -ases/-seed; combining them is an error)")
	)
	var sets scenario.Overrides
	flag.Var(&sets, "set", "spec override as a dotted path, e.g. -set topo.ases=500 (repeatable; needs -scenario)")
	flag.Parse()

	if *pack == "list" {
		if err := scenario.Describe(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	if *pack != "" {
		// -parity is guarded too: silently stacking it on a pack's
		// topology would print statistics for a world the pack's
		// campaign never builds.
		if bad := cli.ExplicitFlags("ases", "seed", "parity"); len(bad) > 0 {
			fatal(fmt.Errorf("-%s applies only without -scenario; use -set spec overrides instead (e.g. -set topo.v6_edge_parity=0.5)", strings.Join(bad, ", -")))
		}
	}
	cfg, err := genConfig(*pack, sets, *ases, *seed)
	if err != nil {
		fatal(err)
	}
	if *parity >= 0 {
		cfg.V6EdgeParity = *parity
	}
	g, err := topo.Generate(cfg)
	if err != nil {
		fatal(err)
	}
	if err := g.Validate(); err != nil {
		fatal(err)
	}

	tiers := map[topo.Tier]int{}
	v6ByTier := map[topo.Tier]int{}
	tunnels, brokers, cdns := 0, 0, 0
	for i := 0; i < g.N(); i++ {
		a := g.AS(i)
		tiers[a.Tier]++
		if a.V6 {
			v6ByTier[a.Tier]++
		}
		if a.TunnelBroker {
			brokers++
		}
		if a.CDN {
			cdns++
		}
		for _, n := range g.RawNeighbors(i) {
			if n.Tunnel {
				tunnels++
			}
		}
	}
	tunnels /= 2

	fmt.Printf("ASes: %d  (tier1 %d, tier2 %d, stub %d)\n",
		g.N(), tiers[topo.Tier1], tiers[topo.Tier2], tiers[topo.Stub])
	fmt.Printf("IPv6-capable: %d (%.1f%%)  tier1 %d/%d  tier2 %d/%d  stub %d/%d\n",
		g.CountV6(), 100*float64(g.CountV6())/float64(g.N()),
		v6ByTier[topo.Tier1], tiers[topo.Tier1],
		v6ByTier[topo.Tier2], tiers[topo.Tier2],
		v6ByTier[topo.Stub], tiers[topo.Stub])
	fmt.Printf("edges: IPv4 %d, IPv6 %d (%.1f%% parity in practice)\n",
		g.EdgeCount(topo.V4), g.EdgeCount(topo.V6),
		100*float64(g.EdgeCount(topo.V6))/float64(g.EdgeCount(topo.V4)))
	fmt.Printf("tunnels: %d (brokers: %d)   CDN ASes: %d\n", tunnels, brokers, cdns)

	// Path-length profile from AS 0.
	c := bgp.NewComputer(g)
	for _, fam := range []topo.Family{topo.V4, topo.V6} {
		hist := map[int]int{}
		reach := 0
		for dst := 0; dst < g.N(); dst++ {
			c.Routes(dst, fam)
			if p := c.PathFrom(0); p != nil {
				reach++
				hist[len(p)-1]++
			}
		}
		fmt.Printf("%s from AS 0: %d reachable, hop histogram:", fam, reach)
		for h := 0; h <= 8; h++ {
			if hist[h] > 0 {
				fmt.Printf(" %d:%d", h, hist[h])
			}
		}
		fmt.Println()
	}
}

// genConfig resolves the generator configuration from a scenario pack
// or the classic flags.
func genConfig(pack string, sets scenario.Overrides, ases int, seed int64) (topo.GenConfig, error) {
	if pack == "" {
		if len(sets) > 0 {
			return topo.GenConfig{}, fmt.Errorf("-set overrides a scenario spec; it needs -scenario")
		}
		return topo.DefaultGenConfig(ases, seed), nil
	}
	comp, err := scenario.LoadCompiled(pack, sets)
	if err != nil {
		return topo.GenConfig{}, err
	}
	if comp.Name != "" {
		fmt.Printf("scenario: %s\n", comp.Name)
	}
	if comp.Config.TopoOverride != nil {
		return *comp.Config.TopoOverride, nil
	}
	return topo.DefaultGenConfig(comp.Config.NASes, comp.Config.Seed), nil
}

func fatal(err error) { cli.Fatal("v6topo", err) }
