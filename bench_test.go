// Benchmarks regenerating every table and figure of the paper's
// evaluation (one benchmark per exhibit), plus ablations over the
// design choices DESIGN.md calls out. Shape metrics are attached via
// b.ReportMetric so `go test -bench` output doubles as a compact
// reproduction summary:
//
//	go test -bench=. -benchmem
package v6web

import (
	"context"
	"io"
	"io/fs"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"v6web/internal/alexa"
	"v6web/internal/analysis"
	"v6web/internal/bgp"
	"v6web/internal/core"
	"v6web/internal/daemon"
	"v6web/internal/fault"
	"v6web/internal/netsim"
	"v6web/internal/scenario"
	"v6web/internal/shard"
	"v6web/internal/stats"
	"v6web/internal/store"
	"v6web/internal/topo"
	"v6web/internal/websim"
)

// TestMain lets BenchmarkShardedPaperScaleMini re-exec this test
// binary as shard worker processes.
func TestMain(m *testing.M) {
	shard.MaybeWorker()
	os.Exit(m.Run())
}

// The shared scenario is built once; the per-table benchmarks measure
// the analysis that regenerates each exhibit from the stored data.
var (
	benchOnce sync.Once
	benchSc   *core.Scenario
	benchErr  error
)

func benchScenario(b *testing.B) *core.Scenario {
	b.Helper()
	benchOnce.Do(func() {
		cfg := core.DefaultConfig(42)
		cfg.NASes = 1000
		cfg.ListSize = 10000
		cfg.Extended = 2000
		benchSc, benchErr = core.NewScenario(cfg)
		if benchErr != nil {
			return
		}
		if benchErr = benchSc.Run(); benchErr != nil {
			return
		}
		benchErr = benchSc.RunWorldV6Day()
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchSc
}

func benchStudy(b *testing.B) *analysis.Study {
	return benchScenario(b).Study()
}

// --- Figures ---------------------------------------------------------

func BenchmarkFig1Reachability(b *testing.B) {
	b.ReportAllocs()
	s := benchScenario(b)
	b.ResetTimer()
	var last float64
	for i := 0; i < b.N; i++ {
		_, series := s.Fig1()
		last = series[len(series)-1]
	}
	b.ReportMetric(100*last, "%final-reachability")
}

func BenchmarkFig3aRankReachability(b *testing.B) {
	b.ReportAllocs()
	s := benchScenario(b)
	b.ResetTimer()
	var fr [6]float64
	for i := 0; i < b.N; i++ {
		fr = s.Fig3a()
	}
	b.ReportMetric(100*fr[0], "%top10")
	b.ReportMetric(100*fr[5], "%top1M")
}

func BenchmarkFig3bV6FasterOdds(b *testing.B) {
	b.ReportAllocs()
	s := benchScenario(b)
	b.ResetTimer()
	var top, ext float64
	for i := 0; i < b.N; i++ {
		top, ext = s.Fig3b("Penn")
	}
	b.ReportMetric(100*top, "%v6faster-top1M")
	b.ReportMetric(100*ext, "%v6faster-5M")
}

// --- Tables ----------------------------------------------------------

func BenchmarkTable2Profiles(b *testing.B) {
	b.ReportAllocs()
	study := benchStudy(b)
	b.ResetTimer()
	var rows []analysis.ProfileRow
	for i := 0; i < b.N; i++ {
		rows, _ = study.Table2()
	}
	b.ReportMetric(float64(rows[0].SitesKept), "sites-kept-v0")
	b.ReportMetric(float64(rows[0].CrossV4), "ases-crossed-v4")
	b.ReportMetric(float64(rows[0].CrossV6), "ases-crossed-v6")
}

func BenchmarkTable3FailureCauses(b *testing.B) {
	b.ReportAllocs()
	study := benchStudy(b)
	b.ResetTimer()
	var rows []analysis.FailureRow
	for i := 0; i < b.N; i++ {
		rows = study.Table3()
	}
	r := rows[0]
	b.ReportMetric(float64(r.Insufficient), "insufficient")
	b.ReportMetric(float64(r.TrendDown+r.TrendUp), "trends")
	b.ReportMetric(float64(r.TransUp+r.TransDown), "transitions")
}

func BenchmarkTable4Classification(b *testing.B) {
	b.ReportAllocs()
	study := benchStudy(b)
	b.ResetTimer()
	var rows []analysis.ClassRow
	for i := 0; i < b.N; i++ {
		rows = study.Table4()
	}
	var sp, dp, dl int
	for _, r := range rows {
		sp += r.SP
		dp += r.DP
		dl += r.DL
	}
	b.ReportMetric(float64(sp), "SP-sites")
	b.ReportMetric(float64(dp), "DP-sites")
	b.ReportMetric(float64(dl), "DL-sites")
}

func BenchmarkTable5RemovedBias(b *testing.B) {
	b.ReportAllocs()
	study := benchStudy(b)
	b.ResetTimer()
	var rows []analysis.RemovedBiasRow
	for i := 0; i < b.N; i++ {
		rows = study.Table5()
	}
	r := rows[0]
	b.ReportMetric(float64(r.SPGood+r.DPGood+r.DLGood), "removed-good")
	b.ReportMetric(float64(r.SPBad+r.DPBad+r.DLBad), "removed-bad")
}

func BenchmarkTable6DLPerf(b *testing.B) {
	b.ReportAllocs()
	study := benchStudy(b)
	b.ResetTimer()
	var rows []analysis.DLPerfRow
	for i := 0; i < b.N; i++ {
		rows = study.Table6()
	}
	b.ReportMetric(100*rows[0].FracV4GE, "%v4-ge-v6")
	b.ReportMetric(rows[0].MeanV4, "v4-kBps")
	b.ReportMetric(rows[0].MeanV6, "v6-kBps")
}

func BenchmarkTable7HopCountDLDP(b *testing.B) {
	b.ReportAllocs()
	study := benchStudy(b)
	b.ResetTimer()
	var rows []analysis.HopRow
	for i := 0; i < b.N; i++ {
		rows = study.Table7()
	}
	// Mean v4 speed at the lowest and highest populated buckets of
	// the first vantage.
	r := rows[0]
	lo, hi := -1.0, -1.0
	for bkt := 0; bkt < analysis.HopBuckets; bkt++ {
		if r.Count[bkt] >= 5 {
			if lo < 0 {
				lo = r.Speed[bkt]
			}
			hi = r.Speed[bkt]
		}
	}
	b.ReportMetric(lo, "v4-lowhop-kBps")
	b.ReportMetric(hi, "v4-highhop-kBps")
}

func BenchmarkTable8SPH1(b *testing.B) {
	b.ReportAllocs()
	study := benchStudy(b)
	b.ResetTimer()
	var rows []analysis.SPRow
	for i := 0; i < b.N; i++ {
		rows = study.Table8()
	}
	var comp, zero float64
	for _, r := range rows {
		comp += r.FracComparable
		zero += r.FracZeroMode
	}
	b.ReportMetric(100*comp/float64(len(rows)), "%SP-comparable")
	b.ReportMetric(100*zero/float64(len(rows)), "%SP-zeromode")
}

func BenchmarkTable9HopCountSP(b *testing.B) {
	b.ReportAllocs()
	study := benchStudy(b)
	b.ResetTimer()
	var rows []analysis.HopRow
	for i := 0; i < b.N; i++ {
		rows = study.Table9()
	}
	// v6/v4 speed ratio in the best-populated bucket: H1 says ~1.
	var ratio float64 = -1
	for i := 0; i+1 < len(rows); i += 2 {
		for bkt := 0; bkt < analysis.HopBuckets; bkt++ {
			if rows[i].Count[bkt] >= 5 && rows[i+1].Count[bkt] >= 5 {
				ratio = rows[i+1].Speed[bkt] / rows[i].Speed[bkt]
			}
		}
	}
	b.ReportMetric(ratio, "v6/v4-speed-ratio")
}

func BenchmarkTable10WorldV6DaySP(b *testing.B) {
	b.ReportAllocs()
	s := benchScenario(b)
	b.ResetTimer()
	var rows []analysis.SPRow
	for i := 0; i < b.N; i++ {
		rows = s.V6DayStudy().Table8()
	}
	var comp float64
	var n int
	for _, r := range rows {
		if r.NASes > 0 {
			comp += r.FracComparable
			n++
		}
	}
	if n > 0 {
		b.ReportMetric(100*comp/float64(n), "%v6day-SP-comparable")
	}
}

func BenchmarkTable11DPH2(b *testing.B) {
	b.ReportAllocs()
	study := benchStudy(b)
	b.ResetTimer()
	var rows []analysis.DPRow
	for i := 0; i < b.N; i++ {
		rows = study.Table11()
	}
	var comp float64
	for _, r := range rows {
		comp += r.FracComparable
	}
	b.ReportMetric(100*comp/float64(len(rows)), "%DP-comparable")
}

func BenchmarkTable12WorldV6DayDP(b *testing.B) {
	b.ReportAllocs()
	s := benchScenario(b)
	b.ResetTimer()
	var rows []analysis.DPRow
	for i := 0; i < b.N; i++ {
		rows = s.V6DayStudy().Table11()
	}
	var comp float64
	var n int
	for _, r := range rows {
		if r.NASes > 0 {
			comp += r.FracComparable
			n++
		}
	}
	if n > 0 {
		b.ReportMetric(100*comp/float64(n), "%v6day-DP-comparable")
	}
}

func BenchmarkTable13GoodASCoverage(b *testing.B) {
	b.ReportAllocs()
	study := benchStudy(b)
	b.ResetTimer()
	var rows []analysis.CoverageRow
	for i := 0; i < b.N; i++ {
		rows = study.Table13()
	}
	// Mass in the [50,75) band, the paper's mode.
	var mid float64
	for _, r := range rows {
		mid += r.Frac[2]
	}
	b.ReportMetric(100*mid/float64(len(rows)), "%coverage-50-75")
}

// BenchmarkScenarioRun times the end-to-end campaign at the shared
// bench scale — construction (topology, routing, catalogue) plus
// every monitoring round and the World IPv6 Day side experiment.
// This is the number the hot-path optimizations target; the
// per-exhibit benchmarks above exclude it via b.ResetTimer.
func BenchmarkScenarioRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig(42)
		cfg.NASes = 1000
		cfg.ListSize = 10000
		cfg.Extended = 2000
		s, err := core.NewScenario(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
		if err := s.RunWorldV6Day(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStudyAnalysis isolates the analysis pass at the shared
// bench scale: one un-memoized full study — store snapshot, per-
// vantage single-pass aggregation — plus every Section 5 table
// rendered from it. This is the number the single-pass pipeline and
// memoized partitions target; the per-exhibit benchmarks above go
// through the scenario's memoized study instead.
func BenchmarkStudyAnalysis(b *testing.B) {
	b.ReportAllocs()
	s := benchScenario(b)
	b.ResetTimer()
	var study *analysis.Study
	for i := 0; i < b.N; i++ {
		study = s.ComputeStudy()
		study.Table2()
		study.Table3()
		study.Table4()
		study.Table5()
		study.Table6()
		study.Table7()
		study.Table8()
		study.Table9()
		study.Table11()
		study.Table13()
	}
	rows, _ := study.Table2()
	b.ReportMetric(float64(rows[0].SitesKept), "sites-kept-v0")
	b.ReportMetric(float64(len(study.Vantages)), "vantages")
}

// BenchmarkFullStudy measures the end-to-end pipeline (topology,
// routing, all rounds, analysis) at reduced scale — the repo's
// heaviest macro-benchmark.
func BenchmarkFullStudy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig(int64(100 + i))
		cfg.NASes = 500
		cfg.ListSize = 4000
		cfg.Extended = 0
		cfg.Rounds = 20
		cfg.Vantages = core.ScaledVantages(cfg.Rounds)
		s, err := core.NewScenario(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
		_ = s.Study().Table8()
	}
}

// BenchmarkPaperScale measures the memory shape of a paper-scale
// campaign on the columnar store: live heap bytes per site after the
// campaign and DNS state transitions per site (the delta encoder
// stores O(transitions), not O(sites*rounds)). It runs the
// paper-scale-mini pack by default so CI tracks the trajectory;
// set V6WEB_PAPER_SCALE=full to run the true 1M/5M campaign
// (several minutes, needs a multi-core box — see EXPERIMENTS.md).
func BenchmarkPaperScale(b *testing.B) {
	b.ReportAllocs()
	pack := "paper-scale-mini"
	if os.Getenv("V6WEB_PAPER_SCALE") == "full" {
		pack = "paper-scale"
	}
	comp, err := scenario.LoadCompiled(pack, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		s, err := core.NewScenario(comp.Config)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
		if err := s.RunWorldV6Day(); err != nil {
			b.Fatal(err)
		}
		runtime.GC()
		runtime.ReadMemStats(&after)

		sites, dnsRows, sampleRows, _ := s.DB.Counts()
		var runs, histSites int
		for _, v := range s.DB.Vantages() {
			_, r, n := s.DB.DNSStats(v)
			runs += r
			histSites += n
		}
		live := float64(after.HeapAlloc) - float64(before.HeapAlloc)
		b.ReportMetric(live/float64(sites), "bytes/site")
		b.ReportMetric(float64(runs-histSites)/float64(histSites), "dns-transitions/site")
		b.ReportMetric(float64(dnsRows)/float64(runs), "dns-rows/run")
		b.ReportMetric(float64(sampleRows), "sample-rows")
	}
}

// BenchmarkShardedPaperScaleMini runs the same paper-scale-mini
// campaign as BenchmarkPaperScale, but split across 4 local worker
// processes via the coordinator (internal/shard). On a multi-core
// host the wall-clock time over BenchmarkPaperScale is the campaign
// speedup; the reported merge time and wire bytes per site bound the
// coordinator's sequential overhead — the merge must stay a small
// fraction of a worker's round work for sharding to pay off.
func BenchmarkShardedPaperScaleMini(b *testing.B) {
	b.ReportAllocs()
	comp, err := scenario.LoadCompiled("paper-scale-mini", nil)
	if err != nil {
		b.Fatal(err)
	}
	const workers = 4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// No checkpoint dir: BenchmarkPaperScale doesn't checkpoint
		// either, so the comparison isolates sharding itself. The CI
		// chaos job covers the checkpointed fault/retry path.
		s, st, err := shard.Run(context.Background(), comp.Config, shard.Options{
			Workers: workers,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := s.RunWorldV6Day(); err != nil {
			b.Fatal(err)
		}
		sites, _, _, _ := s.DB.Counts()
		b.ReportMetric(float64(st.Shards), "shards")
		b.ReportMetric(float64(workers), "workers")
		b.ReportMetric(float64(st.MergeDur.Nanoseconds()), "merge-ns")
		b.ReportMetric(float64(st.WireBytes)/float64(sites), "wire-bytes/site")
	}
}

// BenchmarkFaultOffOverhead prices the fault-injection layer when no
// plan is armed — the common case for every production campaign. Each
// iteration runs the same small sharded campaign twice, once with
// Options.Faults nil and once with a parsed-but-empty plan (every
// probability zero, as `-faults seed=1` would yield), and reports the
// wall-clock ratio as fault-off-overhead. The layer's contract is
// that this stays ~1.0: a disabled injector must cost nothing beyond
// a nil check at each hook site.
func BenchmarkFaultOffOverhead(b *testing.B) {
	b.ReportAllocs()
	cfg := core.DefaultConfig(42)
	cfg.NASes = 300
	cfg.ListSize = 2000
	cfg.Extended = 0
	cfg.Rounds = 6
	cfg.V6DayRounds = 3
	cfg.Vantages = core.ScaledVantages(cfg.Rounds)
	off := &fault.Config{Seed: 1}
	run := func(fc *fault.Config) time.Duration {
		t0 := time.Now()
		if _, _, err := shard.Run(context.Background(), cfg, shard.Options{Workers: 2, Faults: fc}); err != nil {
			b.Fatal(err)
		}
		return time.Since(t0)
	}
	b.ResetTimer()
	var base, wired time.Duration
	for i := 0; i < b.N; i++ {
		base += run(nil)
		wired += run(off)
	}
	b.ReportMetric(float64(wired)/float64(base), "fault-off-overhead")
}

// --- Snapshot formats -------------------------------------------------

// diskBytes sums the on-disk size of a saved snapshot — a CSV
// directory or a single .v6db file.
func diskBytes(b *testing.B, root string) float64 {
	b.Helper()
	var total int64
	err := filepath.WalkDir(root, func(_ string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if info, err := d.Info(); err == nil && !d.IsDir() {
			total += info.Size()
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	return float64(total)
}

// BenchmarkSnapshotSave times one full checkpoint write of the shared
// bench database in each snapshot format; disk-bytes is the size the
// save leaves behind. The binary format must beat CSV on both axes —
// that gap is why checkpoints default to binary.
func BenchmarkSnapshotSave(b *testing.B) {
	b.ReportAllocs()
	db := benchScenario(b).DB
	b.ResetTimer()
	b.Run("csv", func(b *testing.B) {
		b.ReportAllocs()
		target := filepath.Join(b.TempDir(), "main")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := db.Save(target); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(diskBytes(b, target), "disk-bytes")
	})
	b.Run("binary", func(b *testing.B) {
		b.ReportAllocs()
		target := filepath.Join(b.TempDir(), "main"+store.BinaryExt)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := db.SaveBinary(target, store.BinaryOptions{Compress: true}); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(diskBytes(b, target), "disk-bytes")
	})
}

// BenchmarkSnapshotLoad times materializing the same database back
// from each format — the cost a resume pays before its first round.
func BenchmarkSnapshotLoad(b *testing.B) {
	b.ReportAllocs()
	db := benchScenario(b).DB
	b.ResetTimer()
	b.Run("csv", func(b *testing.B) {
		b.ReportAllocs()
		target := filepath.Join(b.TempDir(), "main")
		if err := db.Save(target); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := store.Load(target); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("binary", func(b *testing.B) {
		b.ReportAllocs()
		target := filepath.Join(b.TempDir(), "main"+store.BinaryExt)
		if err := db.SaveBinary(target, store.BinaryOptions{Compress: true}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := store.LoadBinary(target); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Ablations (design choices called out in DESIGN.md) ---------------

// ablationScenario runs a small study with the given overrides and
// returns its analysis.
func ablationScenario(b *testing.B, seed int64, mutate func(*core.Config)) *analysis.Study {
	b.Helper()
	cfg := core.DefaultConfig(seed)
	cfg.NASes = 600
	cfg.ListSize = 5000
	cfg.Extended = 0
	cfg.Rounds = 20
	cfg.Vantages = core.ScaledVantages(cfg.Rounds)
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := core.NewScenario(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
	return s.Study()
}

func meanDPComparable(st *analysis.Study) float64 {
	var comp float64
	var n int
	for _, r := range st.Table11() {
		if r.NASes > 0 {
			comp += r.FracComparable + r.FracZeroMode
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return comp / float64(n)
}

func spShare(st *analysis.Study) float64 {
	var sp, dp int
	for _, r := range st.Table4() {
		sp += r.SP
		dp += r.DP
	}
	if sp+dp == 0 {
		return 0
	}
	return float64(sp) / float64(sp+dp)
}

// BenchmarkAblationPeeringParity sweeps the v6 peering-parity knob:
// the SP share of sites must grow with parity (the paper's remedy).
func BenchmarkAblationPeeringParity(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var shares [2]float64
		for k, parity := range []float64{0.5, 1.0} {
			p := parity
			st := ablationScenario(b, 7, func(c *core.Config) {
				tc := topo.DefaultGenConfig(c.NASes, c.Seed)
				tc.V6EdgeParity = p
				if p == 1.0 {
					tc.TunnelFrac = 0
				}
				c.TopoOverride = &tc
			})
			shares[k] = spShare(st)
		}
		b.ReportMetric(100*shares[0], "%SP-parity0.5")
		b.ReportMetric(100*shares[1], "%SP-parity1.0")
	}
}

// BenchmarkAblationTunnelPenalty toggles tunnels: with no tunnels the
// Table 7 low-hop IPv6 artefact disappears.
func BenchmarkAblationTunnelPenalty(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for k, tf := range []float64{0.5, 0.0} {
			frac := tf
			st := ablationScenario(b, 13, func(c *core.Config) {
				tc := topo.DefaultGenConfig(c.NASes, c.Seed)
				tc.TunnelFrac = frac
				c.TopoOverride = &tc
			})
			rows := st.Table7()
			// Low-hop (buckets 1-2) v6/v4 speed ratio across vantages.
			var v4, v6 float64
			var n4, n6 int
			for j := 0; j+1 < len(rows); j += 2 {
				for bkt := 0; bkt < 2; bkt++ {
					if rows[j].Count[bkt] > 0 {
						v4 += rows[j].Speed[bkt] * float64(rows[j].Count[bkt])
						n4 += rows[j].Count[bkt]
					}
					if rows[j+1].Count[bkt] > 0 {
						v6 += rows[j+1].Speed[bkt] * float64(rows[j+1].Count[bkt])
						n6 += rows[j+1].Count[bkt]
					}
				}
			}
			if n4 > 0 && n6 > 0 {
				name := "lowhop-v6/v4-tunnels"
				if frac == 0 {
					name = "lowhop-v6/v4-notunnels"
				}
				b.ReportMetric((v6/float64(n6))/(v4/float64(n4)), name)
			}
			_ = k
		}
	}
}

// BenchmarkAblationV6EdgePenaltyH1 breaks H1 on purpose: degrading
// every native v6 edge must crater the SP comparable fraction.
func BenchmarkAblationV6EdgePenaltyH1(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, penalty := range []float64{1.0, 0.6} {
			p := penalty
			st := ablationScenario(b, 17, func(c *core.Config) {
				nc := netsim.DefaultConfig(c.Seed)
				nc.V6EdgePenalty = p
				c.Net = &nc
			})
			var comp float64
			rows := st.Table8()
			for _, r := range rows {
				comp += r.FracComparable
			}
			name := "%SP-comparable-parity"
			if p < 1 {
				name = "%SP-comparable-broken"
			}
			b.ReportMetric(100*comp/float64(len(rows)), name)
		}
	}
}

// BenchmarkAblationServerDeficiency sweeps the deficient-v6-server
// rate, which drives the zero-mode prevalence of Tables 8 and 11.
// Zero-modes are counted across both SP and DP destination ASes for
// statistical weight at bench scale.
func BenchmarkAblationServerDeficiency(b *testing.B) {
	b.ReportAllocs()
	// On a shared path (SP) only servers can explain an AS-level
	// deficit, so every non-comparable SP AS is server-attributable:
	// zero-mode when a matching site proves it, "small #" when the
	// AS is too small to show one.
	serverDegraded := func(st *analysis.Study) float64 {
		var deg, n float64
		for _, r := range st.Table8() {
			deg += (1 - r.FracComparable) * float64(r.NASes)
			n += float64(r.NASes)
		}
		if n == 0 {
			return 0
		}
		return deg / n
	}
	for i := 0; i < b.N; i++ {
		for _, badMix := range []float64{0.0, 0.5} {
			bm := badMix
			st := ablationScenario(b, 19, func(c *core.Config) {
				c.NASes = 1000
				c.ListSize = 10000
				c.Rounds = 30
				wc := websim.DefaultConfig(c.Seed)
				wc.BadMixASFrac = bm
				wc.BadFracInBad = 0.8
				if bm == 0 {
					wc.BadFracInGood = 0
				}
				c.Web = &wc
			})
			name := "%SP-server-degraded-clean"
			if bm > 0 {
				name = "%SP-server-degraded-badmix"
			}
			b.ReportMetric(100*serverDegraded(st), name)
		}
	}
}

// BenchmarkAblationCIStopRule measures the cost/accuracy trade-off of
// the 10% CI stop rule against a fixed-count rule.
func BenchmarkAblationCIStopRule(b *testing.B) {
	b.ReportAllocs()
	rule := stats.CIStop{Frac: 0.10, MinN: 3}
	rng := rand.New(rand.NewSource(3))
	var totalDownloads, converged int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var w stats.Welford
		for d := 0; d < 30; d++ {
			w.Add(50 * (1 + 0.04*rng.NormFloat64()))
			if rule.Done(&w) {
				break
			}
		}
		totalDownloads += w.N()
		if rule.Done(&w) {
			converged++
		}
	}
	b.ReportMetric(float64(totalDownloads)/float64(b.N), "downloads/site")
	b.ReportMetric(100*float64(converged)/float64(b.N), "%converged")
}

// BenchmarkAblationBGPPreference contrasts policy routing with plain
// shortest-path: policy paths are at least as long, shifting the
// hop-count mix the performance model feeds on.
func BenchmarkAblationBGPPreference(b *testing.B) {
	b.ReportAllocs()
	g := mustGraph(b)
	c := bgp.NewComputer(g)
	var longer, pairs, extra float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Aggregate over a destination sample so a single iteration
		// already carries signal.
		for k := 0; k < 20; k++ {
			dst := (i*20 + k*61) % g.N()
			polLen := make(map[int]int)
			c.Routes(dst, topo.V4)
			for src := 0; src < g.N(); src += 7 {
				if p := c.PathFrom(src); p != nil {
					polLen[src] = len(p) - 1
				}
			}
			c.RoutesShortest(dst, topo.V4)
			for src, pl := range polLen {
				p := c.PathFrom(src)
				if p == nil {
					continue
				}
				pairs++
				if d := pl - (len(p) - 1); d > 0 {
					longer++
					extra += float64(d)
				}
			}
		}
	}
	if pairs > 0 {
		b.ReportMetric(100*longer/pairs, "%policy-longer")
		b.ReportMetric(extra/pairs, "extra-hops/pair")
	}
}

// BenchmarkMonitorScaling addresses Section 6's worry about "the
// ability of the monitoring tool and its underlying database to
// handle growth in IPv6 accessible sites": one full monitoring round
// at increasing list sizes, then the full six-vantage roster with the
// round's units of work executed serially vs on the round worker
// pool. Comparing the 6vp-serial and 6vp-parallel timings on a
// multi-core host gives the campaign's wall-clock speedup; their
// shape metrics (sample/DNS row counts) must match exactly — the
// parallel path is byte-identical, which TestParallelSerial-
// CampaignsByteIdentical enforces on the CSVs.
func BenchmarkMonitorScaling(b *testing.B) {
	b.ReportAllocs()
	for _, size := range []int{2000, 8000, 32000} {
		size := size
		b.Run(byteSizeName(size), func(b *testing.B) {
			b.ReportAllocs()
			cfg := core.DefaultConfig(3)
			cfg.NASes = 800
			cfg.ListSize = size
			cfg.Extended = 0
			cfg.Rounds = 2
			scaled := core.DefaultVantages()[:1] // Comcast only
			scaled[0].StartRound = 0
			cfg.Vantages = scaled
			s, err := core.NewScenario(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Run is idempotent; time construction+both rounds by
				// rebuilding per iteration at the smallest amortizable
				// unit: a fresh scenario.
				s2, err := core.NewScenario(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if err := s2.Run(); err != nil {
					b.Fatal(err)
				}
				_ = s
			}
		})
	}
	for _, mode := range []struct {
		name    string
		workers int
	}{{"6vp-serial", 1}, {"6vp-parallel", 0}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			workers := mode.workers
			if workers == 0 {
				if runtime.NumCPU() < 2 {
					// The worker pool can only lose on one CPU; a "parallel"
					// number measured there would misread as a regression.
					b.Skip("6vp-parallel needs >=2 CPUs; serial timing is the honest number here")
				}
				workers = runtime.GOMAXPROCS(0)
			}
			b.ReportMetric(float64(workers), "workers")
			b.ReportAllocs()
			cfg := core.DefaultConfig(11)
			cfg.NASes = 800
			cfg.ListSize = 6000
			cfg.Extended = 1500
			cfg.Rounds = 8
			cfg.Vantages = core.ScaledVantages(cfg.Rounds)
			cfg.RoundWorkers = mode.workers
			var samples, dnsRows int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := core.NewScenario(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if err := s.Run(); err != nil {
					b.Fatal(err)
				}
				_, dnsRows, samples, _ = s.DB.Counts()
			}
			b.ReportMetric(float64(samples), "sample-rows")
			b.ReportMetric(float64(dnsRows), "dns-rows")
		})
	}
}

func byteSizeName(n int) string {
	switch {
	case n >= 1000:
		return itoa(n/1000) + "k-sites"
	default:
		return itoa(n) + "-sites"
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkExtensionVantageCoverage measures the coverage-growth
// extension: marginal IPv6 AS coverage per added vantage.
func BenchmarkExtensionVantageCoverage(b *testing.B) {
	b.ReportAllocs()
	s := benchScenario(b)
	b.ResetTimer()
	var growth []int
	for i := 0; i < b.N; i++ {
		growth = s.CoverageGrowth()
	}
	if len(growth) > 0 {
		b.ReportMetric(float64(growth[0]), "ases-1-vantage")
		b.ReportMetric(float64(growth[len(growth)-1]), "ases-all-vantages")
	}
}

// BenchmarkExtensionTunnelReport measures the tunnel-prevalence
// extension and reports the deficit contrast.
func BenchmarkExtensionTunnelReport(b *testing.B) {
	b.ReportAllocs()
	s := benchScenario(b)
	b.ResetTimer()
	var rows []core.TunnelStats
	for i := 0; i < b.N; i++ {
		rows = s.TunnelReport()
	}
	var tun, nat float64
	var n int
	for _, r := range rows {
		if r.SitesTunneled >= 3 && r.SitesNative >= 3 {
			tun += r.V6DeficitTunneled()
			nat += r.V6DeficitNative()
			n++
		}
	}
	if n > 0 {
		b.ReportMetric(100*tun/float64(n), "%v6deficit-tunneled")
		b.ReportMetric(100*nat/float64(n), "%v6deficit-native")
	}
}

// --- helpers ---------------------------------------------------------

var (
	benchGraphOnce sync.Once
	benchGraph     *topo.Graph
	benchGraphErr  error
)

func mustGraph(b *testing.B) *topo.Graph {
	b.Helper()
	benchGraphOnce.Do(func() {
		benchGraph, benchGraphErr = topo.Generate(topo.DefaultGenConfig(1200, 5))
	})
	if benchGraphErr != nil {
		b.Fatal(benchGraphErr)
	}
	return benchGraph
}

// BenchmarkAdoptionModel exercises the Fig 1 primitive directly.
func BenchmarkAdoptionModel(b *testing.B) {
	b.ReportAllocs()
	ad := alexa.NewAdoption(1, alexa.DefaultTimeline())
	tl := ad.Timeline
	hits := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ad.IsV6At(alexa.SiteID(i), 1+i%1000000, tl.End) {
			hits++
		}
	}
	_ = hits
}

// BenchmarkDaemonWarmExhibit measures v6mond's hot serving path: a
// completed campaign's pre-rendered report fetched over real HTTP.
// Warm exhibits are immutable bytes behind an atomic pointer, so this
// is the sustained-load figure for the daemon (req/s, bytes/op) —
// the render limiter is never touched.
func BenchmarkDaemonWarmExhibit(b *testing.B) {
	b.ReportAllocs()
	d := daemon.New(daemon.Options{Dir: b.TempDir(), Addr: "127.0.0.1:0"})
	if _, err := d.Add("bench", "baseline-2011",
		scenario.Overrides{"topo.ases=150", "list.size=1000", "schedule.rounds=5"}); err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- d.Run(ctx) }()
	defer func() {
		cancel()
		if err := <-done; err != nil {
			b.Fatal(err)
		}
	}()
	deadline := time.Now().Add(2 * time.Minute)
	for d.Addr() == "" || d.Campaigns()[0].State() != daemon.StateComplete {
		if time.Now().After(deadline) {
			b.Fatal("bench campaign never completed")
		}
		time.Sleep(10 * time.Millisecond)
	}
	url := "http://" + d.Addr() + "/api/campaigns/bench/report"
	client := &http.Client{}
	var served int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Get(url)
		if err != nil {
			b.Fatal(err)
		}
		n, err := io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			b.Fatalf("GET report: %d %v", resp.StatusCode, err)
		}
		served += n
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)/sec, "req/s")
	}
	b.ReportMetric(float64(served)/float64(b.N), "bytes/op")
}
