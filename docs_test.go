package v6web

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The documentation suite references files and directories by path;
// a rename that is not propagated leaves dead references behind. This
// test scans every documentation entry point and fails on any
// referenced path that no longer exists — CI's docs job runs it
// alongside gofmt and vet.

// docFiles are the documents whose references are checked.
var docFiles = []string{"doc.go", "README.md", "DESIGN.md", "EXPERIMENTS.md", "PAPER.md"}

var (
	// Repository-relative paths: internal/..., examples/..., cmd/...
	// ("*" tokens are checked as globs).
	treePathRe = regexp.MustCompile(`\b(?:internal|examples|cmd)(?:/[A-Za-z0-9_.*-]+)*`)
	// Root-level documents (README.md, DESIGN.md, ...).
	rootMDRe = regexp.MustCompile(`\b[A-Z][A-Za-z0-9_-]*\.md\b`)
	// Root-level Go files the docs point at by bare name. Other bare
	// .go names (runner.go, main.go, ...) are package-internal
	// mentions and are not resolvable from the root.
	rootGoFiles = map[string]bool{"doc.go": true, "bench_test.go": true}
	bareGoRe    = regexp.MustCompile(`\b[a-z][a-z0-9_]*\.go\b`)
)

func TestDocReferences(t *testing.T) {
	total := 0
	for _, doc := range docFiles {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Fatalf("documentation entry point missing: %v", err)
		}
		text := string(data)
		seen := map[string]bool{}
		check := func(ref string) {
			ref = strings.TrimRight(ref, "./")
			if ref == "" || seen[ref] {
				return
			}
			seen[ref] = true
			total++
			if strings.Contains(ref, "*") {
				matches, err := filepath.Glob(ref)
				if err != nil || len(matches) == 0 {
					t.Errorf("%s references %q, which matches nothing", doc, ref)
				}
				return
			}
			if _, err := os.Stat(ref); err != nil {
				t.Errorf("%s references %q, which does not exist", doc, ref)
			}
		}
		for _, ref := range treePathRe.FindAllString(text, -1) {
			check(ref)
		}
		for _, ref := range rootMDRe.FindAllString(text, -1) {
			check(ref)
		}
		for _, ref := range bareGoRe.FindAllString(text, -1) {
			if rootGoFiles[ref] {
				check(ref)
			}
		}
	}
	// Guard against a regex regression silently checking nothing: the
	// suite references far more than this many distinct paths.
	if total < 20 {
		t.Errorf("only %d references found across the documentation; the scanner is likely broken", total)
	}
}

// The docs doc.go promises must exist and be linked from doc.go (the
// repository's front door), per the repository's acceptance bar.
func TestDocGoLinksTheSuite(t *testing.T) {
	data, err := os.ReadFile("doc.go")
	if err != nil {
		t.Fatal(err)
	}
	for _, doc := range []string{"README.md", "DESIGN.md", "EXPERIMENTS.md"} {
		if !strings.Contains(string(data), doc) {
			t.Errorf("doc.go does not link %s", doc)
		}
	}
}
