// Quickstart: run a small deterministic study end to end and print
// the paper's two headline verdicts.
//
//	go run ./examples/quickstart
//
// H1 — on destination ASes reached over the SAME IPv6 and IPv4 AS
// path, the two data planes perform comparably.
// H2 — on ASes reached over DIFFERENT paths, IPv6 is usually worse:
// routing disparity, not forwarding, is the culprit.
package main

import (
	"context"
	"fmt"
	"log"

	"v6web/internal/core"
)

func main() {
	cfg := core.DefaultConfig(42)
	cfg.NASes = 800     // synthetic Internet size
	cfg.ListSize = 8000 // stands in for Alexa's top 1M
	cfg.Extended = 0
	s, err := core.NewScenario(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// The campaign runner streams per-round events; watch the
	// always-on Penn vantage to see the study progress.
	err = s.RunContext(context.Background(), core.WithObserver(func(ev core.RoundEvent) {
		if ev.Vantage == "Penn" {
			fmt.Printf("\rmonitoring: round %d/%d", ev.Round+1, cfg.Rounds)
		}
	}))
	fmt.Println()
	if err != nil {
		log.Fatal(err)
	}

	study := s.Study()
	sp := study.Table8()
	dp := study.Table11()

	fmt.Println("IPv6 vs IPv4 through web access — headline results")
	fmt.Println()
	fmt.Printf("%-10s  %28s  %28s\n", "vantage", "SP ASes: IPv6~IPv4 (H1)", "DP ASes: IPv6~IPv4 (H2)")
	for i := range sp {
		fmt.Printf("%-10s  %14.1f%% of %-4d        %14.1f%% of %-4d\n",
			sp[i].Vantage,
			100*(sp[i].FracComparable+sp[i].FracZeroMode), sp[i].NASes,
			100*(dp[i].FracComparable+dp[i].FracZeroMode), dp[i].NASes)
	}
	fmt.Println()
	fmt.Println("H1: same-path ASes overwhelmingly see comparable IPv6/IPv4 performance.")
	fmt.Println("H2: different-path ASes rarely do — peering parity is the missing piece.")
}
