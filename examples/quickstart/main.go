// Quickstart: run a small deterministic study end to end and print
// the paper's two headline verdicts.
//
//	go run ./examples/quickstart
//
// H1 — on destination ASes reached over the SAME IPv6 and IPv4 AS
// path, the two data planes perform comparably.
// H2 — on ASes reached over DIFFERENT paths, IPv6 is usually worse:
// routing disparity, not forwarding, is the culprit.
package main

import (
	"context"
	"fmt"
	"log"

	"v6web/internal/core"
	"v6web/internal/scenario"
)

func main() {
	// The world comes from the baseline-2011 scenario pack, scaled
	// down for a quick run with dotted-path overrides — the same
	// mechanism as `v6mon -scenario baseline-2011 -set ...`.
	pack, err := scenario.Load("baseline-2011")
	if err != nil {
		log.Fatal(err)
	}
	for _, kv := range []string{
		"topo.ases=800",  // synthetic Internet size
		"list.size=8000", // stands in for Alexa's top 1M
		"list.extended=0",
	} {
		if err := pack.SetKV(kv); err != nil {
			log.Fatal(err)
		}
	}
	comp, err := pack.Compile()
	if err != nil {
		log.Fatal(err)
	}
	cfg := comp.Config
	s, err := core.NewScenario(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// The campaign runner streams per-round events; watch the
	// always-on Penn vantage to see the study progress.
	err = s.RunContext(context.Background(), core.WithObserver(func(ev core.RoundEvent) {
		if ev.Vantage == "Penn" {
			fmt.Printf("\rmonitoring: round %d/%d", ev.Round+1, cfg.Rounds)
		}
	}))
	fmt.Println()
	if err != nil {
		log.Fatal(err)
	}

	study := s.Study()
	sp := study.Table8()
	dp := study.Table11()

	fmt.Println("IPv6 vs IPv4 through web access — headline results")
	fmt.Println()
	fmt.Printf("%-10s  %28s  %28s\n", "vantage", "SP ASes: IPv6~IPv4 (H1)", "DP ASes: IPv6~IPv4 (H2)")
	for i := range sp {
		fmt.Printf("%-10s  %14.1f%% of %-4d        %14.1f%% of %-4d\n",
			sp[i].Vantage,
			100*(sp[i].FracComparable+sp[i].FracZeroMode), sp[i].NASes,
			100*(dp[i].FracComparable+dp[i].FracZeroMode), dp[i].NASes)
	}
	fmt.Println()
	fmt.Println("H1: same-path ASes overwhelmingly see comparable IPv6/IPv4 performance.")
	fmt.Println("H2: different-path ASes rarely do — peering parity is the missing piece.")
}
