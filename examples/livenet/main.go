// Livenet: the monitoring tool over real wire protocols. This example
// stands up a DNS server (UDP, RFC 1035 wire format) and two
// bandwidth-shaped web servers — one on the IPv4 loopback, one on the
// IPv6 loopback — installs a handful of dual-stack sites with varying
// IPv6 health, and drives the same monitoring engine the simulation
// uses through genuine A/AAAA queries and per-family HTTP downloads.
// It finishes with a Happy Eyeballs (RFC 6555) demonstration.
//
//	go run ./examples/livenet
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"v6web/internal/alexa"
	"v6web/internal/dnssim"
	"v6web/internal/httpsim"
	"v6web/internal/measure"
	"v6web/internal/scenario"
	"v6web/internal/store"
	"v6web/internal/topo"
)

type siteSpec struct {
	id     alexa.SiteID
	page   int
	v4Rate float64
	v6Rate float64 // 0 = IPv4-only (no AAAA)
	note   string
}

func main() {
	zone := dnssim.NewZone()
	dns, err := dnssim.NewServer(zone, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer dns.Close()

	web4, err := httpsim.NewServer("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer web4.Close()
	v6Fallback := false
	web6, err := httpsim.NewServer("[::1]:0")
	if err != nil {
		// No IPv6 loopback on this host: run the IPv6 plane on a
		// second IPv4 server. AAAA records and dual-stack detection
		// work unchanged; only the transport family differs.
		fmt.Println("note: no IPv6 loopback; emulating the IPv6 plane over a second IPv4 server")
		web6, err = httpsim.NewServer("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		v6Fallback = true
	}
	defer web6.Close()

	sites := []siteSpec{
		{1, 48 << 10, 900, 870, "healthy dual stack (SP-like)"},
		{2, 48 << 10, 900, 260, "IPv6 detours via congested peering (DP-like)"},
		{3, 32 << 10, 1200, 350, "CDN IPv4, origin-server IPv6 (DL-like)"},
		{4, 24 << 10, 800, 0, "IPv4 only"},
		{5, 48 << 10, 700, 690, "healthy dual stack"},
	}
	v6Addr := net.ParseIP("::1")
	if v6Fallback {
		v6Addr = net.ParseIP("2001:db8::1") // placeholder AAAA target
	}
	for _, sp := range sites {
		host := measure.HostName(sp.id)
		var v6 net.IP
		if sp.v6Rate > 0 {
			v6 = v6Addr
			web6.SetSite(host, httpsim.SiteConfig{PageSize: sp.page, RateKBps: sp.v6Rate})
		}
		if err := zone.SetSite(host, 300, net.IPv4(127, 0, 0, 1), v6); err != nil {
			log.Fatal(err)
		}
		web4.SetSite(host, httpsim.SiteConfig{PageSize: sp.page, RateKBps: sp.v4Rate})
	}

	fetch := measure.NewLiveFetcher(dns.Addr().String(), web4.Addr().Port, web6.Addr().Port, 1)
	fetch.V6Fallback = v6Fallback
	db := store.NewDB()
	cfg := measure.DefaultConfig("livenet", 1)
	cfg.Workers = 5
	cfg.MaxDownloads = 6
	mon, err := measure.NewMonitor(cfg, fetch, db)
	if err != nil {
		log.Fatal(err)
	}

	var refs []measure.SiteRef
	for i, sp := range sites {
		refs = append(refs, measure.SiteRef{ID: sp.id, FirstRank: i + 1})
	}
	fmt.Println("monitoring round over real sockets (DNS/UDP + shaped HTTP/TCP)...")
	// A fixed round date (the paper's World IPv6 Day) keeps the stored
	// CSVs reproducible across example runs; the sockets are still live.
	roundDate := time.Date(2011, time.June, 8, 0, 0, 0, 0, time.UTC)
	st := mon.RunRound(0, roundDate, 0.5, refs)
	fmt.Printf("sites: %d   dual-stack: %d   measured: %d\n\n", st.Sites, st.Dual, st.Measured)

	fmt.Printf("%-22s %12s %12s %8s  %s\n", "site", "IPv4 kB/s", "IPv6 kB/s", "v6/v4", "diagnosis")
	for _, sp := range sites {
		host := measure.HostName(sp.id)
		s4 := db.Samples("livenet", sp.id, topo.V4)
		s6 := db.Samples("livenet", sp.id, topo.V6)
		switch {
		case len(s4) > 0 && len(s6) > 0:
			ratio := s6[0].MeanSpeed / s4[0].MeanSpeed
			fmt.Printf("%-22s %12.0f %12.0f %7.2fx  %s\n", host, s4[0].MeanSpeed, s6[0].MeanSpeed, ratio, sp.note)
		case len(s4) > 0:
			fmt.Printf("%-22s %12.0f %12s %8s  %s\n", host, s4[0].MeanSpeed, "-", "-", sp.note)
		default:
			fmt.Printf("%-22s %12s %12s %8s  %s\n", host, "-", "-", "-", sp.note)
		}
	}

	// Happy Eyeballs: what a 2011 browser could do about broken v6.
	// The connection strategy is the scenario layer's client policy:
	// the happy-eyeballs-off pack prescribes the paper's per-family
	// isolation (no dialer), and flipping the spec's client knob — the
	// "Happy-Eyeballs variant" dimension of a pack — yields the
	// RFC 6555 racing dialer used below.
	sp, err := scenario.Load("happy-eyeballs-off")
	if err != nil {
		log.Fatal(err)
	}
	comp, err := sp.Compile()
	if err != nil {
		log.Fatal(err)
	}
	if comp.Client.Dialer() != nil {
		log.Fatal("happy-eyeballs-off should prescribe per-family isolation")
	}
	fmt.Println("\npack happy-eyeballs-off: families measured in isolation (the paper's tool) — done above")
	if err := sp.SetKV("client.happy_eyeballs=racing"); err != nil {
		log.Fatal(err)
	}
	if comp, err = sp.Compile(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("client.happy_eyeballs=racing: RFC 6555 dial race against the dual-stack server:")
	he := comp.Client.Dialer()
	var v6Race net.IP
	if !v6Fallback {
		v6Race = net.ParseIP("::1")
	}
	res, err := he.Dial(v6Race, net.IPv4(127, 0, 0, 1), web6.Addr().Port)
	if err != nil {
		log.Fatal(err)
	}
	defer res.Conn.Close()
	fam := "IPv4"
	if res.Family == httpsim.V6 {
		fam = "IPv6"
	}
	fmt.Printf("  %s won in %v\n", fam, res.Elapsed.Round(time.Millisecond))
}
