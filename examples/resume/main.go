// Resume: the checkpoint → crash → resume cycle, in process. The
// paper's campaign ran for months from each vantage; a monitor that
// loses nine months of measurements to one crash is not a monitor.
// This example runs a small campaign with per-round checkpointing,
// "kills" it by cancelling its context once round 3 completes (the
// same path a SIGINT takes in v6mon), resumes from the last committed
// checkpoint in a fresh Scenario — exactly what a restarted process
// would do — and then proves the resumed campaign's final CSVs are
// byte-identical to a campaign that was never interrupted.
//
//	go run ./examples/resume
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"v6web/internal/core"
	"v6web/internal/scenario"
	"v6web/internal/store"
)

func config() core.Config {
	// A scaled-down baseline world from the scenario-pack layer, as
	// `v6mon -scenario baseline-2011 -set ...` would build it.
	sp, err := scenario.Load("baseline-2011")
	if err != nil {
		log.Fatal(err)
	}
	for _, kv := range []string{
		"seed=21", "topo.ases=300", "list.size=2000", "list.extended=0", "schedule.rounds=10",
	} {
		if err := sp.SetKV(kv); err != nil {
			log.Fatal(err)
		}
	}
	comp, err := sp.Compile()
	if err != nil {
		log.Fatal(err)
	}
	return comp.Config
}

func save(s *core.Scenario, dir string) error {
	b := &store.CSVBackend{Dir: dir}
	if err := b.SaveSnapshot(store.SnapMain, s.DB); err != nil {
		return err
	}
	return b.SaveSnapshot(store.SnapV6Day, s.V6DayDB)
}

func main() {
	root, err := os.MkdirTemp("", "v6web-resume-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)
	cfg := config()

	// Reference: the campaign nothing ever happens to.
	ref, err := core.NewScenario(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := ref.Run(); err != nil {
		log.Fatal(err)
	}
	if err := ref.RunWorldV6Day(); err != nil {
		log.Fatal(err)
	}
	if err := save(ref, filepath.Join(root, "ref")); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uninterrupted campaign: %d rounds, %v\n", ref.RoundsDone(), ref.DB)

	// The doomed campaign: checkpoint every round, crash after round 3.
	backend := store.NewCheckpointBackend(filepath.Join(root, "campaign"))
	doomed, err := core.NewScenario(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err = doomed.RunContext(ctx,
		core.WithBackend(backend),
		core.WithCheckpoint(1),
		core.WithObserver(func(ev core.RoundEvent) {
			if ev.Vantage == "Penn" {
				fmt.Printf("  round %d  %-6s  %4d sites monitored (%v)\n",
					ev.Round+1, ev.Vantage, ev.Stats.Sites, ev.Elapsed)
			}
			if ev.Round == 3 {
				cancel() // the "crash": detected at the next round boundary
			}
		}))
	if !errors.Is(err, context.Canceled) {
		log.Fatalf("expected a cancelled campaign, got %v", err)
	}
	fmt.Printf("campaign killed after round %d/%d; checkpoint holds the completed rounds\n\n",
		doomed.RoundsDone(), cfg.Rounds)

	// A new process: same config, same backend, none of the old state.
	resumed, err := core.Resume(cfg, backend)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resumed at round %d/%d\n", resumed.RoundsDone(), cfg.Rounds)
	if err := resumed.RunContext(context.Background(), core.WithBackend(backend), core.WithCheckpoint(1)); err != nil {
		log.Fatal(err)
	}
	if err := resumed.RunWorldV6Day(); err != nil {
		log.Fatal(err)
	}
	if err := save(resumed, filepath.Join(root, "resumed")); err != nil {
		log.Fatal(err)
	}

	// The payoff: crash+resume left no trace in the measurements.
	for _, name := range []string{"main/sites.csv", "main/dns.csv", "main/samples.csv", "main/paths.csv",
		"v6day/sites.csv", "v6day/dns.csv", "v6day/samples.csv", "v6day/paths.csv"} {
		want, err := os.ReadFile(filepath.Join(root, "ref", name))
		if err != nil {
			log.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(root, "resumed", name))
		if err != nil {
			log.Fatal(err)
		}
		status := "byte-identical"
		if string(want) != string(got) {
			status = "MISMATCH"
		}
		fmt.Printf("  %-18s %8d bytes  %s\n", name, len(got), status)
		if status == "MISMATCH" {
			os.Exit(1)
		}
	}
	fmt.Println("\ncrash + resume is invisible in the data: the campaign is durable.")
}
