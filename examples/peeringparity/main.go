// Peering parity: quantify the paper's headline recommendation.
// "Promoting IPv6 and IPv4 peering parity is probably the single most
// effective step towards equal IPv6 and IPv4 performance."
//
// This example runs the same study over three synthetic Internets —
// 2011-like sparse IPv6 peering, improved parity, and full parity
// (every IPv4 adjacency between v6-capable ASes also carries IPv6,
// and no tunnels) — and shows how the SP/DP split and the IPv6
// deficit move. The three worlds are independent campaigns, so they
// run concurrently through the sweep worker pool.
//
//	go run ./examples/peeringparity
package main

import (
	"fmt"
	"log"

	"v6web/internal/core"
	"v6web/internal/scenario"
	"v6web/internal/sweep"
)

// spShare is the share of kept same-location sites reached over the
// same AS path in both families.
func spShare(s *core.Scenario) float64 {
	var sp, dp int
	for _, r := range s.Study().Table4() {
		sp += r.SP
		dp += r.DP
	}
	if sp+dp == 0 {
		return 0
	}
	return float64(sp) / float64(sp+dp)
}

// dpComparable is the mean comparable+zero-mode fraction across
// vantages for different-path ASes.
func dpComparable(s *core.Scenario) float64 {
	var sum float64
	var n int
	for _, r := range s.Study().Table11() {
		if r.NASes > 0 {
			sum += r.FracComparable + r.FracZeroMode
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func main() {
	// The built-in peering-parity pack IS the remedied world (full
	// parity, no tunnels); the other two worlds are the same pack with
	// the parity knobs dialed back via dotted-path overrides — exactly
	// what `v6sweep -scenario peering-parity -over ...` does.
	pack, err := scenario.Load("peering-parity")
	if err != nil {
		log.Fatal(err)
	}
	base, err := pack.Compile()
	if err != nil {
		log.Fatal(err)
	}

	worlds := []struct {
		name string
		sets []string
	}{
		{"2011 (sparse v6 peering)", []string{"topo.v6_edge_parity=0.55", "topo.tunnel_frac=0.30"}},
		{"improved parity", []string{"topo.v6_edge_parity=0.85", "topo.tunnel_frac=0.30"}},
		{"full parity, no tunnels", nil},
	}
	var points []sweep.Point
	for _, w := range worlds {
		sp := pack.Clone()
		for _, kv := range w.sets {
			if err := sp.SetKV(kv); err != nil {
				log.Fatal(err)
			}
		}
		comp, err := sp.Compile()
		if err != nil {
			log.Fatal(err)
		}
		cfg := comp.Config
		points = append(points, sweep.Point{
			Label:  w.name,
			Mutate: func(c *core.Config) { *c = cfg },
		})
	}
	results, err := sweep.Run(base.Config, points, map[string]sweep.Metric{
		"sp": spShare, "dp": dpComparable,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("What does IPv6/IPv4 peering parity buy? (same study, three Internets)")
	fmt.Println()
	fmt.Printf("%-28s  %18s  %22s\n", "world", "SP share of sites", "DP ASes IPv6~IPv4")
	for _, r := range results {
		fmt.Printf("%-28s  %17.1f%%  %21.1f%%\n", r.Label, 100*r.Values["sp"], 100*r.Values["dp"])
	}
	fmt.Println()
	fmt.Println("With parity, sites migrate from DP (different, longer IPv6 paths) to SP,")
	fmt.Println("where H1 guarantees IPv6 performs like IPv4 — the paper's recommendation.")
}
