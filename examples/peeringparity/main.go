// Peering parity: quantify the paper's headline recommendation.
// "Promoting IPv6 and IPv4 peering parity is probably the single most
// effective step towards equal IPv6 and IPv4 performance."
//
// This example runs the same study over two synthetic Internets —
// one with 2011-like sparse IPv6 peering, one with full parity (every
// IPv4 adjacency between v6-capable ASes also carries IPv6, and no
// tunnels) — and shows how the SP/DP split and the IPv6 deficit move.
//
//	go run ./examples/peeringparity
package main

import (
	"fmt"
	"log"

	"v6web/internal/core"
	"v6web/internal/topo"
)

func run(parity float64, dropTunnels bool) (spShare, dpComparable float64) {
	cfg := core.DefaultConfig(11)
	cfg.NASes = 900
	cfg.ListSize = 9000
	cfg.Extended = 0
	tc := topo.DefaultGenConfig(cfg.NASes, cfg.Seed)
	tc.V6EdgeParity = parity
	if dropTunnels {
		tc.TunnelFrac = 0
	}
	cfg.TopoOverride = &tc

	s, err := core.NewScenario(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := s.Run(); err != nil {
		log.Fatal(err)
	}
	study := s.Study()
	var sp, dp int
	for _, r := range study.Table4() {
		sp += r.SP
		dp += r.DP
	}
	if sp+dp > 0 {
		spShare = float64(sp) / float64(sp+dp)
	}
	var compSum float64
	var n int
	for _, r := range study.Table11() {
		if r.NASes > 0 {
			compSum += r.FracComparable + r.FracZeroMode
			n++
		}
	}
	if n > 0 {
		dpComparable = compSum / float64(n)
	}
	return spShare, dpComparable
}

func main() {
	fmt.Println("What does IPv6/IPv4 peering parity buy? (same study, two Internets)")
	fmt.Println()
	fmt.Printf("%-28s  %18s  %22s\n", "world", "SP share of sites", "DP ASes IPv6~IPv4")
	for _, w := range []struct {
		name   string
		parity float64
		noTun  bool
	}{
		{"2011 (sparse v6 peering)", 0.55, false},
		{"improved parity", 0.85, false},
		{"full parity, no tunnels", 1.00, true},
	} {
		sp, dpc := run(w.parity, w.noTun)
		fmt.Printf("%-28s  %17.1f%%  %21.1f%%\n", w.name, 100*sp, 100*dpc)
	}
	fmt.Println()
	fmt.Println("With parity, sites migrate from DP (different, longer IPv6 paths) to SP,")
	fmt.Println("where H1 guarantees IPv6 performs like IPv4 — the paper's recommendation.")
}
