// World IPv6 Day: reproduce the paper's side experiment (Section 5.3,
// Tables 10 and 12). On June 8, 2011 the participating sites were
// monitored every 30 minutes while IPv6 traffic spiked — if IPv6
// forwarding had hidden load limits, this is when they would show.
//
//	go run ./examples/worldipv6day
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"v6web/internal/core"
	"v6web/internal/report"
	"v6web/internal/scenario"
)

func main() {
	// The event's world is the built-in world-ipv6-day scenario pack.
	sp, err := scenario.Load("world-ipv6-day")
	if err != nil {
		log.Fatal(err)
	}
	comp, err := sp.Compile()
	if err != nil {
		log.Fatal(err)
	}
	cfg := comp.Config
	s, err := core.NewScenario(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// The main study supplies the AS paths and classification
	// context; the V6Day experiment runs its own dense rounds, which
	// the runner's event stream makes visible as they happen.
	ctx := context.Background()
	if err := s.RunContext(ctx); err != nil {
		log.Fatal(err)
	}
	err = s.RunWorldV6DayContext(ctx, core.WithObserver(func(ev core.RoundEvent) {
		if ev.Vantage == "Penn" {
			fmt.Printf("June 8, %s  %-5s  %d participants monitored\n",
				ev.Date.Format("15:04"), ev.Vantage, ev.Stats.Sites)
		}
	}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	parts := s.V6DayParticipants()
	fmt.Printf("World IPv6 Day participants among monitored sites: %d\n", len(parts))
	fmt.Printf("30-minute rounds: %d, vantages: Penn, LU, UPCB (no Comcast data, as in the paper)\n\n", cfg.V6DayRounds)

	v6day := s.V6DayStudy()
	report.Table10(os.Stdout, v6day.Table8())
	report.Table12(os.Stdout, v6day.Table11())

	// Contrast with the everyday study.
	study := s.Study()
	report.Table8(os.Stdout, study.Table8())
	fmt.Println("Participants fare at least as well as the everyday SP population —")
	fmt.Println("IPv6 load during the event did not expose forwarding bottlenecks (H1 holds).")
}
