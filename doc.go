// Package v6web reproduces "Assessing IPv6 Through Web Access — A
// Measurement Study and Its Findings" (Nikkhah, Guérin, Lee, Woundy;
// ACM CoNEXT 2011) as a self-contained Go system.
//
// The paper measured IPv6 adoption and performance by downloading the
// main pages of Alexa's top-1M web sites over both address families
// from six vantage points for a year, correlating the results with
// BGP AS_PATH data. Its two validated hypotheses: H1 — the IPv6 and
// IPv4 data planes perform comparably on identical AS paths; H2 —
// routing differences (missing IPv6 peering) are the primary cause of
// poorer IPv6 performance.
//
// Because the original study is gated on a live-Internet deployment,
// this reproduction builds the whole measurement stack over a
// synthetic Internet: an AS-level topology with business
// relationships and a sparser IPv6 sub-topology (internal/topo),
// Gao–Rexford route computation (internal/bgp), a calibrated data
// plane (internal/netsim), site and server models (internal/websim,
// internal/alexa), DNS and HTTP substrates that also run over real
// loopback sockets (internal/dnswire, internal/dnssim,
// internal/httpsim), and the paper's monitoring tool
// (internal/measure) feeding the full Section 4/5 analysis pipeline
// (internal/analysis, internal/report).
//
// internal/core ties it together as a long-lived measurement
// *campaign*, the shape the paper's 22-month Penn deployment actually
// had: Scenario.RunContext drives a resumable round cursor
// (NextRound/RoundsDone) under a context, streams typed RoundEvents
// to observers (core.WithObserver), and checkpoints completed rounds
// (core.WithCheckpoint) to a pluggable storage backend
// (store.Backend — plain CSV directories or the crash-safe,
// append-only store.CheckpointBackend). A campaign killed at any
// round resumes via core.Resume with final results byte-identical to
// a never-interrupted run. The round is also the parallel unit:
// every started vantage (and the extended site population) monitors
// concurrently on a bounded pool (core.Config.RoundWorkers), with
// events, checkpoints, and CSVs byte-identical to the serial path —
// analysis then runs as a single pass over a frozen store snapshot
// (store.DB.Freeze), memoized per campaign. internal/sweep fans
// independent campaigns out across a bounded worker pool for
// parameter studies.
//
// Worlds are declared, not hard-coded: internal/scenario defines
// versioned scenario packs — small JSON specs covering topology
// shape, adoption and peering curves, client behavior (Happy-Eyeballs
// variants, the tool's retry policy), campaign schedule, and report
// selection — that compile to the exact core.Config a campaign runs.
// A built-in registry ships the paper's catalog of worlds
// (baseline-2011, world-ipv6-day, peering-parity, broken-tunnels,
// cdn-rollout, happy-eyeballs-off, impatient-client), each
// golden-tested byte-identical to the hard-coded construction it
// replaced, and any spec field takes dotted-path overrides
// ("topo.ases=2000") from the CLIs.
//
// The cmd tools expose the same machinery: v6mon runs (and with
// -resume, continues) a checkpointed campaign with SIGINT-graceful
// shutdown — or, with -shards N, splits it across worker processes
// with a deterministic merge (cmd/v6shard is the multi-machine
// form) — v6report regenerates every table and figure from a saved
// or fresh campaign, v6sweep runs what-if parameter sweeps
// concurrently (including -over sweeps across any scenario-spec
// field), and v6topo inspects the synthetic substrate. All the
// campaign tools accept -scenario <name|file>. examples/resume
// demonstrates the checkpoint → crash → resume cycle end to end;
// bench_test.go regenerates every exhibit.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured
// comparisons.
package v6web
