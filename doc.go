// Package v6web reproduces "Assessing IPv6 Through Web Access — A
// Measurement Study and Its Findings" (Nikkhah, Guérin, Lee, Woundy;
// ACM CoNEXT 2011) as a self-contained Go system.
//
// The paper measured IPv6 adoption and performance by downloading the
// main pages of Alexa's top-1M web sites over both address families
// from six vantage points for a year, correlating the results with
// BGP AS_PATH data. Its two validated hypotheses: H1 — the IPv6 and
// IPv4 data planes perform comparably on identical AS paths; H2 —
// routing differences (missing IPv6 peering) are the primary cause of
// poorer IPv6 performance.
//
// Because the original study is gated on a live-Internet deployment,
// this reproduction builds the whole measurement stack over a
// synthetic Internet: an AS-level topology with business
// relationships and a sparser IPv6 sub-topology (internal/topo),
// Gao–Rexford route computation (internal/bgp), a calibrated data
// plane (internal/netsim), site and server models (internal/websim,
// internal/alexa), DNS and HTTP substrates that also run over real
// loopback sockets (internal/dnswire, internal/dnssim,
// internal/httpsim), the paper's monitoring tool (internal/measure),
// a result store (internal/store), and the full Section 4/5 analysis
// pipeline (internal/analysis). internal/core ties it together;
// bench_test.go regenerates every table and figure.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured
// comparisons.
package v6web
